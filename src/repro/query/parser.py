"""Recursive-descent parser for the XQuery subset.

Character-level parsing (no separate lexer) keeps the two context-
sensitive corners simple: ``<`` starts an element constructor exactly
where an expression is expected and a name character follows, and the
text inside constructors is raw until ``{`` or a tag.

Keywords are recognized case-insensitively — the paper writes ``FOR``
/ ``WHERE`` / ``RETURN`` in upper case, real XQuery uses lower case;
both parse.
"""

from __future__ import annotations

from ..errors import XQuerySyntaxError
from .ast import (
    AndExpr,
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    Expr,
    FLWR,
    ForClause,
    LetClause,
    NumberLiteral,
    PathExpr,
    Step,
    StepPredicate,
    StringLiteral,
    TextItem,
    VarRef,
)

_KEYWORDS = {"for", "let", "in", "where", "return", "and", "sortby"}
_DIRECTIONS = {"ascending": "ASCENDING", "descending": "DESCENDING"}
_COMPARE_OPS = ("!=", "<=", ">=", "=", "<", ">")


def parse_query(text: str) -> Expr:
    """Parse one query expression; raises :class:`XQuerySyntaxError`."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.skip_ws()
    if not parser.at_end():
        raise parser.error("unexpected trailing input")
    return expr


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # ------------------------------------------------------------------
    # Scanner utilities
    # ------------------------------------------------------------------
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def skip_ws(self) -> None:
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):  # XQuery comment
                end = self.text.find(":)", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 2
            else:
                return

    def error(self, message: str) -> XQuerySyntaxError:
        prefix = self.text[: self.pos]
        line = prefix.count("\n") + 1
        column = self.pos - prefix.rfind("\n")
        return XQuerySyntaxError(message, line, column)

    def match(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.match(token):
            raise self.error(f"expected {token!r}")

    def _is_name_start(self, ch: str) -> bool:
        return ch.isalpha() or ch == "_"

    def _is_name_char(self, ch: str) -> bool:
        return ch.isalnum() or ch in "_-."

    def read_name(self) -> str:
        self.skip_ws()
        start = self.pos
        if self.at_end() or not self._is_name_start(self.peek()):
            raise self.error("expected a name")
        self.pos += 1
        while not self.at_end() and self._is_name_char(self.peek()):
            self.pos += 1
        return self.text[start : self.pos]

    def peek_keyword(self) -> str | None:
        """The lower-cased keyword at the cursor, if one is next."""
        self.skip_ws()
        start = self.pos
        if self.at_end() or not self._is_name_start(self.peek()):
            return None
        end = start
        while end < self.length and self._is_name_char(self.text[end]):
            end += 1
        word = self.text[start:end].lower()
        return word if word in _KEYWORDS else None

    def match_keyword(self, word: str) -> bool:
        if self.peek_keyword() == word:
            self.read_name()
            return True
        return False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        keyword = self.peek_keyword()
        if keyword in ("for", "let"):
            return self.parse_flwr()
        return self.parse_comparison()

    def parse_flwr(self) -> FLWR:
        clauses: list[ForClause | LetClause] = []
        while True:
            if self.match_keyword("for"):
                while True:
                    var = self.parse_var_name()
                    if not self.match_keyword("in"):
                        raise self.error("expected IN in FOR clause")
                    clauses.append(ForClause(var, self.parse_comparison_free()))
                    if not self.match(","):
                        break
            elif self.match_keyword("let"):
                var = self.parse_var_name()
                self.expect(":=")
                clauses.append(LetClause(var, self.parse_comparison_free()))
            else:
                break
        if not clauses:
            raise self.error("expected FOR or LET")
        where: Expr | None = None
        if self.match_keyword("where"):
            where = self.parse_boolean()
        if not self.match_keyword("return"):
            raise self.error("expected RETURN")
        ret = self.parse_expr()
        sortby = self.parse_sortby()
        return FLWR(tuple(clauses), where, ret, sortby)

    def parse_sortby(self) -> tuple:
        """Optional 2001-era ``SORTBY (key [dir], ...)`` after RETURN."""
        from .ast import SortKey

        if not self.match_keyword("sortby"):
            return ()
        self.expect("(")
        keys: list[SortKey] = []
        while True:
            self.skip_ws()
            if self.peek() == ".":
                self.pos += 1
                path: tuple[str, ...] = (".",)
            else:
                names = [self.read_name()]
                while self.match("/"):
                    names.append(self.read_name())
                path = tuple(names)
            direction = "ASCENDING"
            self.skip_ws()
            if self._is_name_start(self.peek()):
                saved = self.pos
                word = self.read_name().lower()
                if word in _DIRECTIONS:
                    direction = _DIRECTIONS[word]
                else:
                    self.pos = saved
                    raise self.error(f"expected a sort direction, got {word!r}")
            keys.append(SortKey(path, direction))
            if not self.match(","):
                break
        self.expect(")")
        if not keys:
            raise self.error("SORTBY needs at least one key")
        return tuple(keys)

    def parse_var_name(self) -> str:
        self.skip_ws()
        self.expect("$")
        return self.read_name()

    def parse_boolean(self) -> Expr:
        parts = [self.parse_comparison()]
        while self.match_keyword("and"):
            parts.append(self.parse_comparison())
        if len(parts) == 1:
            return parts[0]
        return AndExpr(tuple(parts))

    def parse_comparison(self) -> Expr:
        left = self.parse_comparison_free()
        self.skip_ws()
        for op in _COMPARE_OPS:
            # "<" only acts as a comparator when no constructor can start.
            if op.startswith("<") and self._constructor_ahead():
                continue
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                right = self.parse_comparison_free()
                return Comparison(left, op, right)
        return left

    def parse_comparison_free(self) -> Expr:
        """An expression that is not itself a top-level comparison."""
        self.skip_ws()
        keyword = self.peek_keyword()
        if keyword in ("for", "let"):
            return self.parse_flwr()
        if self.match("("):
            inner = self.parse_expr()
            self.expect(")")
            return self.parse_path_steps(inner)
        ch = self.peek()
        if ch == "<" and self._constructor_ahead():
            return self.parse_constructor()
        if ch == "$":
            self.pos += 1
            name = self.read_name()
            return self.parse_path_steps(VarRef(name))
        if ch == '"' or ch == "'":
            return self.parse_string()
        if ch.isdigit():
            return self.parse_number()
        if self._is_name_start(ch):
            return self.parse_function_or_error()
        raise self.error("expected an expression")

    def _constructor_ahead(self) -> bool:
        self.skip_ws()
        return self.peek() == "<" and self._is_name_start(self.peek(1))

    def parse_string(self) -> StringLiteral:
        quote = self.peek()
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return StringLiteral(value)

    def parse_number(self) -> NumberLiteral:
        start = self.pos
        while not self.at_end() and (self.peek().isdigit() or self.peek() == "."):
            self.pos += 1
        return NumberLiteral(self.text[start : self.pos])

    def parse_function_or_error(self) -> Expr:
        name = self.read_name()
        self.skip_ws()
        if not self.match("("):
            raise self.error(f"unexpected name {name!r} (expected a function call)")
        lowered = name.lower()
        if lowered == "document":
            argument = self.parse_expr()
            if not isinstance(argument, StringLiteral):
                raise self.error("document() takes a string literal")
            self.expect(")")
            return self.parse_path_steps(DocumentCall(argument.value))
        if lowered == "distinct-values":
            argument = self.parse_expr()
            self.expect(")")
            return DistinctValues(argument)
        if lowered == "count":
            argument = self.parse_expr()
            self.expect(")")
            return CountCall(argument)
        if lowered in ("sum", "min", "max", "avg"):
            from .ast import AggregateCall

            argument = self.parse_expr()
            self.expect(")")
            return AggregateCall(lowered, argument)
        raise self.error(f"unsupported function {name}()")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def parse_path_steps(self, base: Expr) -> Expr:
        steps: list[Step] = []
        while True:
            self.skip_ws()
            if self.text.startswith("//", self.pos):
                self.pos += 2
                axis = "//"
            elif self.peek() == "/" and not self.text.startswith("/>", self.pos):
                self.pos += 1
                axis = "/"
            else:
                break
            if self.peek() == "@":
                if axis != "/":
                    raise self.error("attribute steps use a single '/'")
                self.pos += 1
                steps.append(Step("@", self.read_name()))
                continue
            if self.peek() == "*":
                self.pos += 1
                name = "*"
            else:
                name = self.read_name()
            predicate = None
            if self.match("["):
                predicate = self.parse_step_predicate()
                self.expect("]")
            steps.append(Step(axis, name, predicate))
        if not steps:
            return base
        return PathExpr(base, tuple(steps))

    def parse_step_predicate(self) -> StepPredicate:
        path = [self.read_name()]
        while self.match("/"):
            path.append(self.read_name())
        self.skip_ws()
        for op in _COMPARE_OPS:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                right = self.parse_comparison_free()
                return StepPredicate(tuple(path), op, right)
        raise self.error("expected a comparison inside [...]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def parse_constructor(self) -> ElementConstructor:
        self.expect("<")
        tag = self.read_name()
        attributes: list[tuple[str, str]] = []
        while True:
            self.skip_ws()
            if self.match("/>"):
                return ElementConstructor(tag, tuple(attributes), ())
            if self.match(">"):
                break
            name = self.read_name()
            self.expect("=")
            self.skip_ws()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted")
            attributes.append((name, self.parse_string().value))
        items: list = []
        text_start = self.pos
        while True:
            if self.at_end():
                raise self.error(f"unterminated constructor <{tag}>")
            ch = self.peek()
            if ch == "{":
                self._flush_text(items, text_start)
                self.pos += 1
                items.append(EmbeddedExpr(self.parse_expr()))
                self.expect("}")
                text_start = self.pos
            elif ch == "<":
                if self.text.startswith("</", self.pos):
                    self._flush_text(items, text_start)
                    self.pos += 2
                    closing = self.read_name()
                    if closing != tag:
                        raise self.error(
                            f"mismatched closing tag </{closing}> for <{tag}>"
                        )
                    self.skip_ws()
                    self.expect(">")
                    return ElementConstructor(tag, tuple(attributes), tuple(items))
                self._flush_text(items, text_start)
                items.append(self.parse_constructor())
                text_start = self.pos
            else:
                self.pos += 1

    def _flush_text(self, items: list, start: int) -> None:
        text = self.text[start : self.pos].strip()
        if text:
            items.append(TextItem(text))
