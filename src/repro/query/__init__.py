"""XQuery front end, plans, rewrite, and execution engines (S10-S14)."""

from .ast import render
from .database import Database, QueryResult
from .estimate import CardinalityEstimator, PlanChoice, PlanEstimate
from .interpreter import Interpreter
from .logical_exec import LogicalExecutor
from .parser import parse_query
from .physical import PhysicalExecutor
from .plan import ArgSpec, GroupOutputSpec, PlanNode, StitchSpec
from .rewrite import detect, rewrite
from .translate import GroupingQuery, naive_plan, recognize, translate

__all__ = [
    "render",
    "Database",
    "QueryResult",
    "CardinalityEstimator",
    "PlanChoice",
    "PlanEstimate",
    "Interpreter",
    "LogicalExecutor",
    "parse_query",
    "PhysicalExecutor",
    "ArgSpec",
    "GroupOutputSpec",
    "PlanNode",
    "StitchSpec",
    "detect",
    "rewrite",
    "GroupingQuery",
    "naive_plan",
    "recognize",
    "translate",
]
