"""AST for the XQuery subset of the paper.

The subset covers every query the paper uses: FLWR expressions with FOR
(over ``distinct-values(...)`` or plain paths), LET, WHERE with
conjunctive comparisons, RETURN with element constructors and embedded
expressions, path expressions with ``/``, ``//`` and one-step value
predicates (``article[author = $a]/title``), and the builtins
``document()``, ``distinct-values()``, ``count()``.

Nodes are plain dataclasses; :func:`render` prints an AST back as query
text (used by error messages and the explain output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union[
    "FLWR",
    "PathExpr",
    "VarRef",
    "DocumentCall",
    "DistinctValues",
    "CountCall",
    "ElementConstructor",
    "StringLiteral",
    "NumberLiteral",
    "Comparison",
    "AndExpr",
]


@dataclass(frozen=True)
class StringLiteral:
    value: str


@dataclass(frozen=True)
class NumberLiteral:
    text: str


@dataclass(frozen=True)
class VarRef:
    name: str  # without the leading $


@dataclass(frozen=True)
class DocumentCall:
    """``document("bib.xml")``"""

    name: str


@dataclass(frozen=True)
class DistinctValues:
    """``distinct-values(expr)``"""

    argument: Expr


@dataclass(frozen=True)
class CountCall:
    """``count(expr)``"""

    argument: Expr


@dataclass(frozen=True)
class AggregateCall:
    """``sum(expr)`` / ``min(expr)`` / ``max(expr)`` / ``avg(expr)``."""

    function: str  # "sum" | "min" | "max" | "avg"
    argument: Expr


@dataclass(frozen=True)
class StepPredicate:
    """A ``[path op expr]`` qualifier on a path step.

    ``path`` is the relative path inside the brackets (e.g. ``author``
    or ``author/institution``); ``op`` is a comparison operator and
    ``right`` the compared expression (a variable or literal).
    """

    path: tuple[str, ...]
    op: str
    right: Expr


@dataclass(frozen=True)
class Step:
    """One path step.

    ``axis`` is ``/`` (child), ``//`` (descendant), or ``@`` (attribute,
    written ``/@name`` — yields the attribute's string value and must be
    the final step).
    """

    axis: str  # "/", "//", or "@"
    name: str  # element name test, "*", or the attribute name
    predicate: StepPredicate | None = None


@dataclass(frozen=True)
class PathExpr:
    """``base step step ...`` — e.g. ``document("b")//article/title``."""

    base: Expr
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class Comparison:
    left: Expr
    op: str  # = != < <= > >=
    right: Expr


@dataclass(frozen=True)
class AndExpr:
    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class ForClause:
    var: str
    source: Expr


@dataclass(frozen=True)
class LetClause:
    var: str
    source: Expr


@dataclass(frozen=True)
class SortKey:
    """One SORTBY component: a relative path (``(".",)`` means the item
    itself) and a direction."""

    path: tuple[str, ...]
    direction: str = "ASCENDING"


@dataclass(frozen=True)
class FLWR:
    clauses: tuple[Union[ForClause, LetClause], ...]
    where: Expr | None
    ret: Expr
    sortby: tuple[SortKey, ...] = ()


@dataclass(frozen=True)
class TextItem:
    """Literal text inside an element constructor."""

    text: str


@dataclass(frozen=True)
class EmbeddedExpr:
    """``{ expr }`` inside an element constructor."""

    expr: Expr


@dataclass(frozen=True)
class ElementConstructor:
    tag: str
    attributes: tuple[tuple[str, str], ...] = field(default=())
    items: tuple[Union[TextItem, EmbeddedExpr, "ElementConstructor"], ...] = field(default=())


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render(node: object) -> str:
    """Pretty-print an AST node as (roughly) the original query text."""
    if isinstance(node, StringLiteral):
        return f'"{node.value}"'
    if isinstance(node, NumberLiteral):
        return node.text
    if isinstance(node, VarRef):
        return f"${node.name}"
    if isinstance(node, DocumentCall):
        return f'document("{node.name}")'
    if isinstance(node, DistinctValues):
        return f"distinct-values({render(node.argument)})"
    if isinstance(node, CountCall):
        return f"count({render(node.argument)})"
    if isinstance(node, AggregateCall):
        return f"{node.function}({render(node.argument)})"
    if isinstance(node, PathExpr):
        steps = "".join(_render_step(step) for step in node.steps)
        return f"{render(node.base)}{steps}"
    if isinstance(node, Comparison):
        return f"{render(node.left)} {node.op} {render(node.right)}"
    if isinstance(node, AndExpr):
        return " AND ".join(render(part) for part in node.parts)
    if isinstance(node, ForClause):
        return f"FOR ${node.var} IN {render(node.source)}"
    if isinstance(node, LetClause):
        return f"LET ${node.var} := {render(node.source)}"
    if isinstance(node, FLWR):
        lines = [render(clause) for clause in node.clauses]
        if node.where is not None:
            lines.append(f"WHERE {render(node.where)}")
        lines.append(f"RETURN {render(node.ret)}")
        if node.sortby:
            keys = ", ".join(
                f"{'/'.join(key.path)} {key.direction}" for key in node.sortby
            )
            lines.append(f"SORTBY ({keys})")
        return "\n".join(lines)
    if isinstance(node, TextItem):
        return node.text
    if isinstance(node, EmbeddedExpr):
        return "{" + render(node.expr) + "}"
    if isinstance(node, ElementConstructor):
        attrs = "".join(f' {name}="{value}"' for name, value in node.attributes)
        inner = " ".join(render(item) for item in node.items)
        return f"<{node.tag}{attrs}>{inner}</{node.tag}>"
    raise TypeError(f"cannot render {node!r}")


def _render_step(step: Step) -> str:
    if step.axis == "@":
        return f"/@{step.name}"
    text = f"{step.axis}{step.name}"
    if step.predicate is not None:
        path = "/".join(step.predicate.path)
        text += f"[{path} {step.predicate.op} {render(step.predicate.right)}]"
    return text
