"""Physical plan execution against the node store (Sec. 5 of the paper).

Where the logical executor materializes full trees, this executor keeps
everything as node identifiers until output:

* **selection** — pattern matching via index candidate streams +
  structural joins; witnesses are tuples of node labels, no data pages
  touched (Sec. 5.2);
* **projection** — deferred: the projection list travels with the
  witness set and only drives what gets materialized at the end;
* **duplicate elimination / grouping** — values are populated *only*
  for the grouping (and sorting) basis; "the sorting is performed with
  minimum information — only a witness tree identifier in addition to
  the actual sort key" (Sec. 5.3);
* **left outer join** — the naive plan's nested-loops value join; its
  cost is the paper's baseline cost;
* **construction** — the final step populates exactly the values the
  output needs (titles, or nothing at all for COUNT).

The grouping step supports three strategies for ablation A2:

* ``sort`` — the paper's implementation (identifier sort on basis keys);
* ``hash`` — hash grouping on basis keys (also identifier-only);
* ``replicate`` — the strawman of Sec. 5.3: replicate and materialize
  each source tree once per witness *before* grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cancellation import checkpoint
from ..errors import TranslationError
from ..indexing.labels import NodeLabel
from ..indexing.manager import IndexManager
from ..pattern.matcher import StoreMatcher
from ..pattern.pattern import PatternTree
from ..pattern.witness import StoreMatch
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .plan import GroupOutputSpec, PlanNode, StitchSpec


@dataclass
class DatabaseRef:
    """Marker value produced by ``scan``: the stored document itself."""

    doc: str


@dataclass
class WitnessSet:
    """Identifier-only result of a physical selection (+ projection)."""

    pattern: PatternTree
    matches: list[StoreMatch]
    selection_list: frozenset[str] = frozenset()
    projection_list: tuple[str, ...] = ()


@dataclass
class JoinedSet:
    """Result of the naive plan's left outer join.

    ``pairs`` holds ``(left_match, right_match_or_None)`` in left-major
    order; padded entries carry ``None`` on the right.
    """

    left_pattern: PatternTree
    right_pattern: PatternTree
    left_label: str
    right_label: str
    pairs: list[tuple[StoreMatch, StoreMatch | None]] = field(default_factory=list)


@dataclass
class GroupedSet:
    """Identifier-only groups: basis value -> member witnesses."""

    pattern: PatternTree
    basis_label: str
    groups: list[tuple[str, StoreMatch, list[StoreMatch]]] = field(default_factory=list)
    # (value, exemplar witness for the basis node, ordered members)


class PhysicalExecutor:
    """Run logical plans with store-backed physical operators."""

    def __init__(
        self,
        store: NodeStore,
        indexes: IndexManager,
        grouping_strategy: str = "sort",
        use_indexes: bool = True,
        join_strategy: str = "nested-loop",
        columnar: bool = True,
    ):
        """``join_strategy`` picks the naive plan's join implementation:

        * ``nested-loop`` — the paper's words: "a nested loops evaluation
          plan obtained through a direct implementation of the ...
          XQuery expression as written"; the inner value is re-fetched
          through the store on every probe (quadratic);
        * ``value-hash`` — the amortized reading of Sec. 6's description
          ("eliminate duplicates ... and perform the requisite join"):
          one value lookup per pair, then a hash join.

        The paper's measured ratios sit between these two baselines; the
        benchmarks report both.
        """
        if grouping_strategy not in ("sort", "hash", "replicate", "value-index"):
            raise TranslationError(f"unknown grouping strategy {grouping_strategy!r}")
        if join_strategy not in ("nested-loop", "value-hash"):
            raise TranslationError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.indexes = indexes
        self.grouping_strategy = grouping_strategy
        self.join_strategy = join_strategy
        self.matcher = StoreMatcher(store, indexes, use_indexes=use_indexes)
        if columnar and use_indexes:
            # The columnar strategy: staircase merges over the node
            # table for this store generation (built lazily, cached on
            # the index manager).  ``use_indexes=False`` keeps the A1
            # full-scan ablation an honest object walk.
            self.matcher.columnar = indexes.ensure_columnar()
        self.profiler = None
        # Optional (op, detail, cardinality) log: the optimizer's
        # estimate-vs-actual feedback loop, far cheaper than profiling.
        self.card_log: list[tuple[str, str, int]] | None = None

    def enable_profiling(self):
        """Wrap every operator in a timed span; returns the profiler."""
        from ..observability import Profiler, snapshot_counters

        self.profiler = Profiler(
            lambda: snapshot_counters(self.store, self.indexes, self.matcher)
        )
        return self.profiler

    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode) -> Collection:
        result = self._run(plan)
        if not isinstance(result, Collection):
            raise TranslationError(
                f"plan root {plan.op!r} does not produce a collection"
            )
        return result

    def _run(self, plan: PlanNode):
        handler = getattr(self, f"_exec_{plan.op}", None)
        if handler is None:
            raise TranslationError(f"physical executor: unsupported op {plan.op!r}")
        if self.profiler is None and self.card_log is None:
            return handler(plan)
        from ..observability import result_cardinality

        detail = plan.describe()[len(plan.op) :].strip()
        if self.profiler is None:
            result = handler(plan)
            self.card_log.append((plan.op, detail, result_cardinality(result)))
            return result
        with self.profiler.operator(plan.op, detail) as span:
            result = handler(plan)
            span.output_rows = result_cardinality(result)
        if self.card_log is not None:
            self.card_log.append((plan.op, detail, span.output_rows))
        return result

    # ------------------------------------------------------------------
    # Scan / select / project
    # ------------------------------------------------------------------
    def _exec_scan(self, plan: PlanNode) -> DatabaseRef:
        return DatabaseRef(plan.params["doc"])

    def _exec_select(self, plan: PlanNode) -> WitnessSet:
        source = self._run(plan.child)
        if not isinstance(source, DatabaseRef):
            raise TranslationError("physical select expects the database as input")
        pattern: PatternTree = plan.params["pattern"]
        matches = self._scoped_match(pattern, source.doc)
        return WitnessSet(pattern, matches, plan.params["sl"])

    def _scoped_match(self, pattern: PatternTree, doc: str) -> list[StoreMatch]:
        """Match a pattern *within one document*: the store can hold
        several documents, and a scan names exactly one.  Root bindings
        are restricted to the document's label region (labels are
        globally disjoint per document) — two bisects on the columnar
        path, a stream filter on the object walk."""
        info = self.store.document(doc)
        start, end, _level = self.store.label(info.root_nid)
        return self.matcher.match(pattern, doc_bounds=(start, end))

    def _exec_project(self, plan: PlanNode) -> WitnessSet:
        source = self._run(plan.child)
        if not isinstance(source, WitnessSet):
            raise TranslationError("physical project expects a witness set")
        # Identifier-only: record the projection list; materialization is
        # deferred to the construction step (late population, Sec. 5.3).
        return WitnessSet(
            source.pattern,
            source.matches,
            source.selection_list,
            tuple(plan.params["pl"]),
        )

    # ------------------------------------------------------------------
    # Duplicate elimination
    # ------------------------------------------------------------------
    def _exec_dupelim(self, plan: PlanNode):
        source = self._run(plan.child)
        label = plan.params["label"]
        if isinstance(source, WitnessSet):
            if label is None:
                raise TranslationError("physical dupelim on witnesses needs a label")
            return self._dupelim_witnesses(source, label)
        if isinstance(source, JoinedSet):
            return self._dupelim_joined(source)
        raise TranslationError("physical dupelim: unsupported input")

    def _dupelim_witnesses(self, source: WitnessSet, label: str) -> WitnessSet:
        seen: set[str] = set()
        kept: list[StoreMatch] = []
        for match in source.matches:
            value = self._populate(match, label)
            if value in seen:
                continue
            seen.add(value)
            kept.append(match)
        return WitnessSet(source.pattern, kept, source.selection_list, source.projection_list)

    def _dupelim_joined(self, source: JoinedSet) -> JoinedSet:
        seen: set[tuple] = set()
        kept: list[tuple[StoreMatch, StoreMatch | None]] = []
        for left, right in source.pairs:
            left_value = left.values.get(source.left_label)
            right_nid = right.nid(source.right_label) if right is not None else None
            key = (left_value, right_nid)
            if key in seen:
                continue
            seen.add(key)
            kept.append((left, right))
        return JoinedSet(
            source.left_pattern,
            source.right_pattern,
            source.left_label,
            source.right_label,
            kept,
        )

    # ------------------------------------------------------------------
    # The naive join (nested loops over populated values)
    # ------------------------------------------------------------------
    def _exec_left_outer_join(self, plan: PlanNode) -> JoinedSet:
        left_source = self._run(plan.inputs[0])
        right_source = self._run(plan.inputs[1])
        if not isinstance(left_source, WitnessSet) or not isinstance(right_source, DatabaseRef):
            raise TranslationError("physical join expects witnesses JOIN database")
        conditions = plan.params["conditions"]
        if len(conditions) != 1:
            raise TranslationError("physical join supports one equality condition")
        left_label, right_label = conditions[0]
        right_pattern: PatternTree = plan.params["right_pattern"]

        # Identify the grouped-element label: the SL-adorned node that
        # belongs to the right ("inner") pattern.
        sl = plan.params["sl"]
        adorned_right = sorted(
            label for label in sl if right_pattern.has_node(label)
        )
        inner_label = (
            adorned_right[0] if adorned_right else right_pattern.nodes()[-1].label
        )

        right_matches = self._scoped_match(right_pattern, right_source.doc)
        joined = JoinedSet(
            plan.params["left_pattern"], right_pattern, left_label, inner_label
        )
        if self.join_strategy == "nested-loop":
            # The paper's words for the baseline: "a nested loops
            # evaluation plan obtained through a direct implementation of
            # the corresponding XQuery expression as written".  The inner
            # value is fetched through the store on every probe — no
            # operator-level value cache; only the buffer pool caches
            # pages, as in a real tuple-at-a-time evaluator.
            for left_match in left_source.matches:
                checkpoint()
                left_value = self._populate(left_match, left_label)
                padded = True
                for right_match in right_matches:
                    right_value = self.store.content(right_match.nid(right_label)) or ""
                    if right_value == left_value:
                        right_match.values[right_label] = right_value
                        padded = False
                        joined.pairs.append((left_match, right_match))
                if padded:
                    joined.pairs.append((left_match, None))
            return joined

        # value-hash: the amortized reading of the paper's "direct"
        # description — one value lookup per article/author pair, then
        # "perform the requisite join" as a hash join.
        by_value: dict[str, list[StoreMatch]] = {}
        for right_match in right_matches:
            value = self._populate(right_match, right_label)
            by_value.setdefault(value, []).append(right_match)
        for left_match in left_source.matches:
            checkpoint()
            left_value = self._populate(left_match, left_label)
            partners = by_value.get(left_value, ())
            if not partners:
                joined.pairs.append((left_match, None))
                continue
            for right_match in partners:
                joined.pairs.append((left_match, right_match))
        return joined

    # ------------------------------------------------------------------
    # Grouping (Sec. 5.3)
    # ------------------------------------------------------------------
    def _exec_groupby(self, plan: PlanNode) -> GroupedSet:
        source = self._run(plan.child)
        if not isinstance(source, WitnessSet):
            raise TranslationError("physical groupby expects a witness set")
        pattern: PatternTree = plan.params["pattern"]
        basis = plan.params["basis"]
        if len(basis) != 1 or "." in basis[0]:
            raise TranslationError("physical groupby supports a single $i basis item")
        # A star only affects output materialization (the basis node's
        # whole subtree is emitted); grouping itself keys on the value.
        basis_label = basis[0].rstrip("*")

        # The pattern root ranges over the witnesses of the previous
        # selection: feed their labels as root candidates.
        source_label = self._witness_root_label(source)
        root_candidates = sorted(
            {match.bindings[source_label] for match in source.matches},
            key=lambda label: label.start,
        )
        witnesses = self.matcher.match(pattern, root_candidates=root_candidates)

        if self.grouping_strategy == "replicate":
            return self._group_by_replication(pattern, basis_label, witnesses)
        if self.grouping_strategy == "value-index":
            return self._group_by_value_index(plan, pattern, basis_label, witnesses)

        # Populate only the grouping-basis values.
        keyed: list[tuple[str, int, StoreMatch]] = []
        for index, match in enumerate(witnesses):
            checkpoint()
            value = self._populate(match, basis_label)
            keyed.append((value, index, match))

        if self.grouping_strategy == "sort":
            keyed.sort(key=lambda item: (item[0], item[1]))
            groups: dict[str, list[tuple[int, StoreMatch]]] = {}
            for value, index, match in keyed:
                groups.setdefault(value, []).append((index, match))
        else:  # hash
            groups = {}
            for value, index, match in keyed:
                groups.setdefault(value, []).append((index, match))

        # Emit groups in first-appearance (document) order so all engines
        # agree on output order.  Within a group, duplicate witnesses of
        # the same source tree are dropped — the migrated form of the
        # naive plan's "duplicate elimination based on articles": two
        # same-valued bindings inside one source tree (e.g. two authors
        # from one institution) must not duplicate the member.
        ordered_values = sorted(groups, key=lambda value: groups[value][0][0])
        result = GroupedSet(pattern, basis_label)
        root_label = pattern.root.label
        ordering = plan.params.get("ordering") or []
        for value in ordered_values:
            members: list[StoreMatch] = []
            seen_sources: set[int] = set()
            for _, match in sorted(groups[value], key=lambda p: p[0]):
                source_nid = match.nid(root_label)
                if source_nid in seen_sources:
                    continue
                seen_sources.add(source_nid)
                members.append(match)
            # The exemplar (the ``{$g}`` rep) is the first witness in
            # document order — SORTBY only reorders the members.
            exemplar = members[0]
            members = self._order_members(members, ordering, root_label)
            result.groups.append((value, exemplar, members))
        return result

    def _order_members(
        self,
        members: list[StoreMatch],
        ordering: list[tuple[tuple[str, ...], str]],
        root_label: str,
    ) -> list[StoreMatch]:
        """Apply the GROUPBY ordering list: navigate only the ordering
        values (Sec. 5.3: "we populate only the grouping (and sorting)
        list values") and sort stably, leftmost key primary.  Paths are
        resolved from the member root; a member lacking the sort path
        sorts as the empty string rather than being excluded."""
        from ..core.base import numeric_or_text

        if not ordering:
            return members
        ordered = members
        for path, direction in reversed(ordering):
            ordered = sorted(
                ordered,
                key=lambda match: numeric_or_text(
                    self._navigated_value(match.nid(root_label), path)
                ),
                reverse=direction == "DESCENDING",
            )
        return list(ordered)

    def _group_by_value_index(
        self,
        plan: PlanNode,
        pattern: PatternTree,
        basis_label: str,
        witnesses: list[StoreMatch],
    ) -> GroupedSet:
        """Footnote-8 strategy: drive grouping from the value index.

        The index hands back each distinct value with *the identifiers of
        the value nodes* — "whereas we would typically be interested in
        grouping some other (related) node" — so every posting pays a
        parent-chain navigation from the value node up to the grouped
        element.  The ablation (A2) measures exactly that overhead
        against identifier-sort grouping.
        """
        basis_tag = pattern.node(basis_label).predicate.tag_constraint()
        root_tag = pattern.root.predicate.tag_constraint()
        if basis_tag is None or root_tag is None:
            raise TranslationError(
                "value-index grouping requires tag constraints on the basis "
                "and root pattern nodes"
            )
        by_basis_nid: dict[int, list[tuple[int, StoreMatch]]] = {}
        for index, match in enumerate(witnesses):
            by_basis_nid.setdefault(match.nid(basis_label), []).append((index, match))

        ordering = plan.params.get("ordering") or []
        root_label = pattern.root.label
        staged: list[tuple[int, str, list[StoreMatch]]] = []
        for value, postings in self.indexes.distinct_values(basis_tag):
            collected: list[tuple[int, StoreMatch]] = []
            for label in postings:
                # Navigate up to the grouped element — the index only
                # knows the value node (record lookups per step).
                self._ancestor_with_tag(label.nid, root_tag)
                collected.extend(by_basis_nid.get(label.nid, ()))
            if not collected:
                continue
            collected.sort(key=lambda pair: pair[0])
            members: list[StoreMatch] = []
            seen_sources: set[int] = set()
            for _, match in collected:
                match.values[basis_label] = value  # the index key is the value
                source_nid = match.nid(root_label)
                if source_nid in seen_sources:
                    continue
                seen_sources.add(source_nid)
                members.append(match)
            exemplar = members[0]  # doc-order rep, before SORTBY ordering
            members = self._order_members(members, ordering, root_label)
            staged.append((collected[0][0], value, exemplar, members))

        # First-appearance order, like every other strategy.
        staged.sort(key=lambda entry: entry[0])
        result = GroupedSet(pattern, basis_label)
        for _first, value, exemplar, members in staged:
            result.groups.append((value, exemplar, members))
        return result

    def _ancestor_with_tag(self, nid: int, tag_name: str) -> int | None:
        """Walk parent pointers until a node with ``tag_name`` is found."""
        current = self.store.parent(nid)
        while current is not None:
            if self.store.tag(current) == tag_name:
                return current
            current = self.store.parent(current)
        return None

    def _group_by_replication(
        self, pattern: PatternTree, basis_label: str, witnesses: list[StoreMatch]
    ) -> GroupedSet:
        """Ablation A2 strawman: materialize one full source-tree replica
        per witness *before* grouping (the cost Sec. 5.3 avoids)."""
        replicas: list[tuple[str, int, StoreMatch, XMLNode]] = []
        for index, match in enumerate(witnesses):
            value = self._populate(match, basis_label)
            source_nid = match.nid(pattern.root.label)
            replica = self.store.materialize(source_nid, with_content=True)
            replicas.append((value, index, match, replica))
        replicas.sort(key=lambda item: (item[0], item[1]))
        groups: dict[str, list[tuple[int, StoreMatch]]] = {}
        for value, index, match, _replica in replicas:
            groups.setdefault(value, []).append((index, match))
        ordered_values = sorted(groups, key=lambda value: groups[value][0][0])
        result = GroupedSet(pattern, basis_label)
        root_label = pattern.root.label
        for value in ordered_values:
            members: list[StoreMatch] = []
            seen_sources: set[int] = set()
            for _, match in sorted(groups[value], key=lambda p: p[0]):
                source_nid = match.nid(root_label)
                if source_nid in seen_sources:
                    continue
                seen_sources.add(source_nid)
                members.append(match)
            result.groups.append((value, members[0], members))
        return result

    def _witness_root_label(self, source: WitnessSet) -> str:
        """The label whose bindings carry the witness "payload" nodes —
        the starred projection entry, falling back to the SL adornment."""
        for item in source.projection_list:
            if item.endswith("*"):
                return item[:-1]
        if source.selection_list:
            return next(iter(source.selection_list))
        return source.pattern.root.label

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _exec_stitch(self, plan: PlanNode) -> Collection:
        source = self._run(plan.child)
        if not isinstance(source, JoinedSet):
            raise TranslationError("physical stitch expects joined pairs")
        spec: StitchSpec = plan.params["spec"]
        mode = "values"
        member_path: tuple[str, ...] = ()
        for arg in spec.args:
            if arg.kind == "count":
                mode = "count"
                member_path = arg.member_path
            elif arg.kind == "aggregate":
                mode = arg.function or "sum"
                member_path = arg.member_path
            elif arg.kind == "members":
                member_path = arg.member_path

        order: list[str] = []
        groups: dict[str, list[StoreMatch]] = {}
        exemplars: dict[str, StoreMatch] = {}
        for left, right in source.pairs:
            value = left.values[source.left_label]
            if value not in groups:
                groups[value] = []
                order.append(value)
                exemplars[value] = left
            if right is not None:
                groups[value].append(right)

        output = Collection(name="stitch")
        for value in order:
            group_node = self._materialize_binding(exemplars[value], source.left_label)
            group_members = self._order_joined(groups[value], source.right_label, spec)
            member_nids = [match.nid(source.right_label) for match in group_members]
            if mode == "values":
                members = [
                    self._materialize_member(nid, member_path) for nid in member_nids
                ]
                tree = _assemble_values(spec.return_tag, group_node, members)
            else:
                # Tuple-at-a-time navigation per member — the baseline's
                # way of reaching the output-path nodes.
                reached = [
                    target
                    for nid in member_nids
                    for target in self._navigate_nids(nid, member_path)
                ]
                tree = _assemble_aggregate(
                    spec.return_tag, group_node, self._aggregate_text(mode, reached)
                )
            output.append(DataTree(tree))
        return output

    def _navigate_nids(self, nid: int, path: tuple[str, ...]) -> list[int]:
        frontier = [nid]
        for name in path:
            frontier = [
                child
                for current in frontier
                for child in self.store.children(current)
                if self.store.tag(child) == name
            ]
        return frontier

    def _aggregate_text(self, mode: str, reached: list[int]) -> str | None:
        """COUNT/SUM/MIN/MAX/AVG over the reached output-path nodes."""
        from ..core.aggregation import AggregateFunction

        if mode == "count":
            return str(len(reached))
        values = [self.store.content(nid) or "" for nid in reached]
        rendered = AggregateFunction(mode.upper()).compute(values)
        return rendered if rendered else None

    def _order_joined(
        self, members: list[StoreMatch], inner_label: str, spec: StitchSpec
    ) -> list[StoreMatch]:
        """Member ordering for the naive plan's stitch (SORTBY)."""
        from ..core.base import numeric_or_text

        if not spec.ordering:
            return members
        ordered = members
        for path, direction in reversed(spec.ordering):
            ordered = sorted(
                ordered,
                key=lambda match: numeric_or_text(
                    self._navigated_value(match.nid(inner_label), path)
                ),
                reverse=direction == "DESCENDING",
            )
        return list(ordered)

    def _navigated_value(self, nid: int, path: tuple[str, ...]) -> str:
        frontier = [nid]
        for name in path:
            frontier = [
                child
                for current in frontier
                for child in self.store.children(current)
                if self.store.tag(child) == name
            ]
        if not frontier:
            return ""
        return self.store.content(frontier[0]) or ""

    def _exec_project_groups(self, plan: PlanNode) -> Collection:
        source = self._run(plan.inputs[0])
        if not isinstance(source, GroupedSet):
            raise TranslationError("physical project_groups expects groups")
        spec: GroupOutputSpec = plan.params["spec"]
        root_label = source.pattern.root.label

        outer_matches: list[StoreMatch] | None = None
        outer_label: str | None = None
        if len(plan.inputs) == 2:
            # Padding input: the outer distinct values (filters can
            # orphan a grouping value; it still appears, empty).
            outer = self._run(plan.inputs[1])
            if not isinstance(outer, WitnessSet):
                raise TranslationError("project_groups padding expects witnesses")
            outer_label = self._projected_group_label(outer)
            outer_matches = outer.matches

        reached_by_member: dict[int, list[NodeLabel]] = {}
        if spec.mode != "values":
            # Identifier-only navigation: reach the output-path nodes of
            # every member with structural joins over index label
            # streams — no record or data access.  COUNT then never
            # touches a page ("we can perform the count without
            # physically instantiating the book elements"); the numeric
            # aggregates fetch only the reached nodes' values.
            all_members = sorted(
                {match.bindings[root_label] for _, _, ms in source.groups for match in ms},
                key=lambda label: label.start,
            )
            reached_by_member = self._reach_path_via_joins(all_members, spec.member_path)

        def build(group_node: XMLNode, members: list[StoreMatch]) -> XMLNode:
            if spec.mode == "values":
                member_nodes = [
                    self._materialize_member(match.nid(root_label), spec.member_path)
                    for match in members
                ]
                return _assemble_values(spec.return_tag, group_node, member_nodes)
            reached = [
                label
                for match in members
                for label in reached_by_member.get(match.nid(root_label), ())
            ]
            if spec.mode == "count":
                text: str | None = str(len(reached))
            else:
                from ..core.aggregation import AggregateFunction

                values = [self.store.content(label.nid) or "" for label in reached]
                rendered = AggregateFunction(spec.mode.upper()).compute(values)
                text = rendered if rendered else None
            return _assemble_aggregate(spec.return_tag, group_node, text)

        output = Collection(name="project-groups")
        if outer_matches is None:
            for _value, exemplar, members in source.groups:
                node = build(
                    self._materialize_binding(exemplar, source.basis_label), members
                )
                output.append(DataTree(node))
            return output

        # Padded emission: one element per outer distinct value, in the
        # outer (document) order.
        assert outer_label is not None
        groups_by_value = {
            value: (exemplar, members) for value, exemplar, members in source.groups
        }
        for match in outer_matches:
            value = self._populate(match, outer_label)
            entry = groups_by_value.get(value)
            members = entry[1] if entry is not None else []
            # The ``{$g}`` rep is always the outer distinct occurrence
            # (first in document order over the *unfiltered* data): the
            # group exemplar ranges only over the filtered witnesses and
            # can be a different node with a different subtree.
            node = build(self._materialize_binding(match, outer_label), members)
            output.append(DataTree(node))
        return output

    def _exec_nested_groups(self, plan: PlanNode) -> Collection:
        """Join-graph isolation output: re-correlate the three isolated
        blocks (outer distinct, middle distinct, inner groups) with value
        lookups — one pass each, no per-binding re-evaluation."""
        outer = self._run(plan.inputs[0])
        middle = self._run(plan.inputs[1])
        grouped = self._run(plan.inputs[2])
        if not isinstance(outer, WitnessSet) or not isinstance(middle, WitnessSet):
            raise TranslationError("nested_groups expects distinct witness sets")
        if not isinstance(grouped, GroupedSet):
            raise TranslationError("nested_groups expects a grouped inner input")
        spec = plan.params["spec"]
        outer_label = self._projected_group_label(outer)
        middle_label = self._projected_group_label(middle)
        root_label = grouped.pattern.root.label
        groups_by_value = {
            value: members for value, _exemplar, members in grouped.groups
        }

        # Populate each middle representative's link values once — the
        # representative is the *first occurrence* of the distinct value,
        # exactly the node the middle FOR binds.
        middle_entries: list[tuple[StoreMatch, str, set[str]]] = []
        for match in middle.matches:
            checkpoint()
            link_values = {
                self.store.content(nid) or ""
                for nid in self._navigate_nids(match.nid(middle_label), spec.link_path)
            }
            middle_entries.append((match, self._populate(match, middle_label), link_values))

        output = Collection(name="nested-groups")
        for outer_match in outer.matches:
            checkpoint()
            outer_value = self._populate(outer_match, outer_label)
            element = XMLNode(spec.outer_tag)
            element.append_child(self._materialize_binding(outer_match, outer_label))
            for middle_match, middle_value, link_values in middle_entries:
                if outer_value not in link_values:
                    continue
                members = groups_by_value.get(middle_value, [])
                group_node = self._materialize_binding(middle_match, middle_label)
                if spec.mode == "values":
                    member_nodes = [
                        self._materialize_member(m.nid(root_label), spec.member_path)
                        for m in members
                    ]
                    inner_element = _assemble_values(
                        spec.middle_tag, group_node, member_nodes
                    )
                else:
                    reached = [
                        target
                        for member in members
                        for target in self._navigate_nids(
                            member.nid(root_label), spec.member_path
                        )
                    ]
                    inner_element = _assemble_aggregate(
                        spec.middle_tag,
                        group_node,
                        self._aggregate_text(spec.mode, reached),
                    )
                element.append_child(inner_element)
            output.append(DataTree(element))
        return output

    def _projected_group_label(self, witnesses: WitnessSet) -> str:
        """The starred non-root projection label of a distinct segment —
        the grouping element whose bindings carry the distinct values."""
        candidates = sorted(
            label
            for label in (
                item[:-1] if item.endswith("*") else item
                for item in witnesses.projection_list
            )
            if witnesses.pattern.has_node(label)
            and label != witnesses.pattern.root.label
        )
        if candidates:
            return candidates[0]
        return witnesses.pattern.nodes()[-1].label

    def _reach_path_via_joins(
        self, member_labels: list[NodeLabel], path: tuple[str, ...]
    ) -> dict[int, list[NodeLabel]]:
        """Map each member nid to its output-path node labels, using one
        structural join per path step (labels only).

        Assumes members do not nest inside one another (true for the
        grouped-element collections the plans produce).
        """
        from .physical_join_support import descend_path

        return descend_path(
            self.indexes, member_labels, path, columnar=self.matcher.columnar
        )

    # ------------------------------------------------------------------
    # Value population and materialization
    # ------------------------------------------------------------------
    def _populate(self, match: StoreMatch, label: str) -> str:
        """Populate one binding's value (cached per witness)."""
        cached = match.values.get(label)
        if cached is not None:
            return cached
        value = self.store.content(match.nid(label)) or ""
        match.values[label] = value
        return value

    def _materialize_binding(self, match: StoreMatch, label: str) -> XMLNode:
        """Materialize a bound node *with its subtree* — ``{$a}`` returns
        the full element (Fig. 5.d stars the grouping element)."""
        return self.store.materialize(match.nid(label), with_content=True)

    def _materialize_member(self, nid: int, path: tuple[str, ...]) -> list[XMLNode]:
        """Navigate ``path`` below ``nid`` by child steps and materialize
        the reached nodes with their values."""
        frontier = [nid]
        for name in path:
            next_frontier: list[int] = []
            for current in frontier:
                next_frontier.extend(
                    child
                    for child in self.store.children(current)
                    if self.store.tag(child) == name
                )
            frontier = next_frontier
        return [self.store.materialize(target, with_content=True) for target in frontier]


def _assemble_values(
    return_tag: str, group_node: XMLNode, member_lists: list[list[XMLNode]]
) -> XMLNode:
    root = XMLNode(return_tag)
    root.append_child(group_node)
    for nodes in member_lists:
        for node in nodes:
            root.append_child(node)
    return root


def _assemble_aggregate(
    return_tag: str, group_node: XMLNode, text: str | None
) -> XMLNode:
    root = XMLNode(return_tag)
    root.append_child(group_node)
    root.content = text
    return root
