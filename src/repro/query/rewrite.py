"""The grouping rewrite (Sec. 4.1): detect a join-shaped grouping plan
and replace it with a single-block GROUPBY plan.

**Phase 1 — detection.**  The plan must contain

1. a left outer join applied to the outcome of a previous selection
   (over the database) and the database itself, and
2. a left ("outer") join-plan pattern that is a *tree subset* of the
   right ("inner") pattern — checked with
   :meth:`~repro.pattern.pattern.PatternTree.is_tree_subset_of`, which
   implements the transitive-closure edge test with ``pc ⊆ ad`` marks.

**Phase 2 — rewrite** (the six steps of Sec. 4.1):

1. an initial pattern tree from the right subtree of the join plan
   (Fig. 5.a) drives a selection + projection producing the collection
   of inner (article) trees, entire subtrees kept (Fig. 9);
2. the GROUPBY input pattern tree (Fig. 5.b) is the subtree of the
   inner pattern rooted at the grouped element; the grouping basis is
   the join value ($2.content); the ordering list comes from the inner
   sort spec (empty for Query 1);
3. GROUPBY is applied, producing the intermediate group trees (Fig. 10);
4. a final projection extracts the output nodes (Fig. 5.d) — fused here
   with the construction of the RETURN element;
5. the rename to the RETURN tag is part of that same construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RewriteError
from ..pattern.pattern import Axis, PatternNode, PatternTree, pcify
from ..pattern.predicates import TagEquals
from .plan import (
    GroupOutputSpec,
    NestedGroupSpec,
    PlanNode,
    StitchSpec,
    dupelim,
    groupby,
    nested_groups,
    project,
    project_groups,
    scan,
    select,
)
from .translate import (
    INNER_LABEL,
    JOIN_VALUE_LABEL,
    OUTER_GROUP_LABEL,
    ROOT_LABEL,
    NestedGroupingQuery,
    outer_pattern,
)


@dataclass(frozen=True)
class DetectedGrouping:
    """Everything Phase 1 learned about the joined grouping plan."""

    doc: str
    root_tag: str
    inner_tag: str
    condition_path: tuple[str, ...]
    stitch_spec: StitchSpec
    subset_mapping: dict[str, str]
    # Filter chains (inner-WHERE value conditions): the chain-head
    # pattern nodes hanging off the inner element, carried over to the
    # Phase-2 selection pattern.
    filter_chains: tuple[PatternNode, ...] = ()


def detect(plan: PlanNode) -> DetectedGrouping:
    """Phase 1.  Raises :class:`RewriteError` when the plan is not a
    grouping plan."""
    if plan.op != "stitch":
        raise RewriteError("plan root is not a stitch (RETURN processing)")
    stitch_spec: StitchSpec = plan.params["spec"]

    joins = plan.find("left_outer_join")
    if len(joins) != 1:
        raise RewriteError("expected exactly one left outer join in the plan")
    join = joins[0]

    # Condition 1: the join's right input is the database, and its left
    # input derives from a selection over the same database.
    right_input = join.inputs[1]
    if right_input.op != "scan":
        raise RewriteError("join right input is not the database")
    doc = right_input.params["doc"]
    left_scans = join.inputs[0].find("scan")
    left_selects = join.inputs[0].find("select")
    if not left_selects or not any(node.params["doc"] == doc for node in left_scans):
        raise RewriteError("join left input is not a selection over the database")

    # Condition 2: the outer pattern is a tree subset of the inner one.
    left_pattern: PatternTree = join.params["left_pattern"]
    right_pattern: PatternTree = join.params["right_pattern"]
    mapping = left_pattern.is_tree_subset_of(right_pattern)
    if mapping is None:
        raise RewriteError("outer pattern is not a tree subset of the inner pattern")

    root_tag = _required_tag(right_pattern.root)
    inner_node = right_pattern.node(INNER_LABEL)
    inner_tag = _required_tag(inner_node)
    condition_path = _chain_tags(inner_node)
    filter_chains = tuple(
        child for child in inner_node.children if child.label.startswith("$f")
    )
    return DetectedGrouping(
        doc=doc,
        root_tag=root_tag,
        inner_tag=inner_tag,
        condition_path=condition_path,
        stitch_spec=stitch_spec,
        subset_mapping=mapping,
        filter_chains=filter_chains,
    )


def _required_tag(node: PatternNode) -> str:
    tag = node.predicate.tag_constraint()
    if tag is None:
        raise RewriteError(f"pattern node {node.label} has no tag constraint")
    return tag


def _chain_tags(inner_node: PatternNode) -> tuple[str, ...]:
    """Tags along the pc chain from the inner element to the join value.

    The inner element may carry several chains (filters use ``$f...``
    labels); the condition chain is the one ending at the join-value
    label."""
    tags: list[str] = []
    current = inner_node
    while current.children:
        next_nodes = [
            child
            for child in current.children
            if child.label == JOIN_VALUE_LABEL or child.label.startswith(INNER_LABEL)
        ]
        if not next_nodes:
            break
        if len(next_nodes) != 1:
            raise RewriteError("ambiguous join-value chain in the inner pattern")
        current = next_nodes[0]
        tags.append(_required_tag(current))
    if not tags or current.label != JOIN_VALUE_LABEL:
        raise RewriteError("inner pattern has no join-value chain")
    return tuple(tags)


# ----------------------------------------------------------------------
# Phase 2
# ----------------------------------------------------------------------
SELECT_ROOT = "$1"
SELECT_INNER = "$2"
GROUP_ROOT = "$1"
GROUP_VALUE = "$2"


def initial_pattern(
    root_tag: str,
    inner_tag: str,
    filter_chains: tuple[PatternNode, ...] = (),
) -> PatternTree:
    """Fig. 5.a: ``$1[doc_root] --pc--> $2[article]``.

    The paper's footnote: when a projection follows a selection with the
    same pattern, ad edges become pc; the figure draws pc directly.  We
    keep ad so grouped elements need not be root children — behaviour is
    identical on the paper's data where articles sit under the root.

    Inner-WHERE value filters migrate here: their chains hang off the
    inner element, so the selection already excludes non-qualifying
    members.
    """
    root = PatternNode(SELECT_ROOT, TagEquals(root_tag))
    inner = root.add(SELECT_INNER, TagEquals(inner_tag), Axis.AD)
    for chain in filter_chains:
        inner.add_child(_copy_chain(chain), chain.axis or Axis.PC)
    return PatternTree(root)


def _copy_chain(node: PatternNode) -> PatternNode:
    clone = PatternNode(node.label, node.predicate)
    for child in node.children:
        clone.add_child(_copy_chain(child), child.axis or Axis.PC)
    return clone


def groupby_pattern(
    inner_tag: str,
    condition_path: tuple[str, ...],
) -> PatternTree:
    """Fig. 5.b: the grouped element with the pc chain to the join value.

    SORTBY ordering values are *not* pattern chains: a required chain
    would exclude members lacking the sort path (e.g. an article with no
    ``year`` under ``SORTBY($b/year)``) and silently drop their groups.
    Ordering travels as (path, direction) pairs on the groupby node and
    is resolved by navigation at materialization — missing paths sort as
    the empty string, matching the direct interpreter.
    """
    root = PatternNode(GROUP_ROOT, TagEquals(inner_tag))
    current = root
    for index, name in enumerate(condition_path):
        is_last = index == len(condition_path) - 1
        label = GROUP_VALUE if is_last else f"$1{chr(ord('a') + index)}"
        current = current.add(label, TagEquals(name), Axis.PC)
    return PatternTree(root)


def ordering_list_for(
    ordering: tuple[tuple[tuple[str, ...], str], ...]
) -> list[tuple[tuple[str, ...], str]]:
    """The GROUPBY ordering-list entries: (path from the grouped
    element, direction) pairs, navigated per member at materialization."""
    return [(tuple(path), direction) for path, direction in ordering]


def grouping_segment(
    doc: str,
    root_tag: str,
    inner_tag: str,
    condition_path: tuple[str, ...],
    ordering: tuple[tuple[tuple[str, ...], str], ...],
    filter_chains: tuple[PatternNode, ...],
) -> PlanNode:
    """Phase-2 steps 1–3: select + project the inner elements, then
    GROUPBY on the join value.  Shared by the 2-level rewrite and the
    3-level collapse."""
    database = scan(doc)
    p_initial = initial_pattern(root_tag, inner_tag, filter_chains)
    selected = select(database, p_initial, {SELECT_INNER})
    # Footnote 7: the projection over the selection's output uses the
    # pc-ified pattern.
    projected = project(selected, pcify(p_initial), [SELECT_INNER + "*"])

    p_group = groupby_pattern(inner_tag, condition_path)
    # The basis is starred: the final projection (Fig. 5.d) lists the
    # grouping element as ``$4*`` — its whole subtree appears in the
    # output, exactly what ``{$a}`` returns.
    return groupby(
        projected,
        p_group,
        basis=[GROUP_VALUE + "*"],
        ordering=ordering_list_for(ordering),
    )


def rewrite(plan: PlanNode) -> PlanNode:
    """Phase 1 + Phase 2: return the GROUPBY plan for a grouping plan."""
    detected = detect(plan)
    spec = detected.stitch_spec

    grouped = grouping_segment(
        detected.doc,
        detected.root_tag,
        detected.inner_tag,
        detected.condition_path,
        spec.ordering,
        detected.filter_chains,
    )

    member_path: tuple[str, ...] = ()
    mode = "values"
    count_tag = None
    for arg in spec.args:
        if arg.kind == "members":
            member_path = arg.member_path
        elif arg.kind == "count":
            mode = "count"
            member_path = arg.member_path
            count_tag = arg.count_tag
        elif arg.kind == "aggregate":
            mode = arg.function or "sum"
            member_path = arg.member_path
    output_spec = GroupOutputSpec(
        return_tag=spec.return_tag,
        member_path=member_path,
        mode=mode,
        count_tag=count_tag,
    )
    result = project_groups(grouped, output_spec)
    if detected.filter_chains:
        # With inner-WHERE filters a grouping value can lose *all* its
        # members; the outer FOR still produces it (the left outer join
        # pads in the naive plan).  Keep the naive plan's outer distinct
        # subplan as a second input: the final projection emits an empty
        # group per orphaned value.
        outer_subplan = plan.find("left_outer_join")[0].inputs[0]
        result.inputs.append(outer_subplan)
    return result


# ----------------------------------------------------------------------
# Join-graph isolation: the 3-level collapse
# ----------------------------------------------------------------------
def distinct_segment(doc: str, root_tag: str, group_tag: str) -> PlanNode:
    """Distinct values of a grouping element: select + project +
    duplicate elimination — the naive plan's step 1, reused as an
    isolated join-graph block."""
    pattern = outer_pattern(root_tag, group_tag)
    selected = select(scan(doc), pattern, {OUTER_GROUP_LABEL})
    pattern_pc = pcify(pattern)
    projected = project(selected, pattern_pc, [ROOT_LABEL, OUTER_GROUP_LABEL + "*"])
    return dupelim(projected, pattern_pc, OUTER_GROUP_LABEL)


def collapse_nested(query: NestedGroupingQuery, root_tag: str) -> PlanNode:
    """Collapse a 3-level nested FLWR into one single-block grouping
    plan (join-graph isolation, after Brantner et al.'s unnesting).

    The three correlated FLWR blocks become three *independent* blocks
    over the database — outer distinct values, middle distinct values,
    and the grouped inner collection — glued by ``nested_groups``, which
    re-correlates them with value lookups instead of per-binding
    re-evaluation.  Nested-loop cost collapses from
    ``|G1| x |G2| x |inner|`` to one pass over each block.
    """
    inner = query.inner
    outer = distinct_segment(query.doc, root_tag, query.outer_group_tag)
    middle = distinct_segment(query.doc, root_tag, inner.group_tag)
    grouped = grouping_segment(
        query.doc,
        root_tag,
        inner.inner_tag,
        inner.condition_path,
        inner.ordering,
        _filter_chains_for(inner),
    )
    spec = NestedGroupSpec(
        outer_tag=query.outer_return_tag,
        middle_tag=inner.return_tag,
        link_path=query.link_path,
        member_path=inner.output_path,
        mode=inner.mode,
    )
    return nested_groups(outer, middle, grouped, spec)


def _filter_chains_for(query) -> tuple[PatternNode, ...]:
    """Build the ``$f...`` filter chains for a GroupingQuery's inner
    WHERE filters (the 2-level path gets them from the naive pattern;
    the collapse builds them directly)."""
    from .translate import attach_filter_chains

    if not query.filters:
        return ()
    holder = PatternNode("$tmp", TagEquals(query.inner_tag))
    attach_filter_chains(holder, query.filters)
    return tuple(holder.children)
