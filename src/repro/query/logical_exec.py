"""Logical plan execution with the in-memory TAX operators.

This executor interprets a :class:`~repro.query.plan.PlanNode` tree with
the reference operators of :mod:`repro.core` over fully materialized
collections.  It is the semantics oracle: the physical executor must
produce structurally identical results, and the integration tests check
that on every supported query.

Construction conventions (``stitch`` / ``project_groups``) rely on the
witness-tree shapes produced by the naive plan's join and the groupby
operator respectively; see the inline notes.
"""

from __future__ import annotations

from ..core.base import atomic_value_of
from ..core.duplicates import DuplicateElimination
from ..core.groupby import GroupBy
from ..core.join import Join, JoinKind
from ..core.projection import Projection
from ..core.rename import RenameRoot
from ..core.selection import Selection
from ..errors import TranslationError
from ..indexing.manager import IndexManager
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .plan import GroupOutputSpec, PlanNode, StitchSpec


class LogicalExecutor:
    """Run logical plans over in-memory collections."""

    def __init__(self, store: NodeStore, indexes: IndexManager | None = None):
        self.store = store
        self._documents: dict[str, Collection] = {}
        self.profiler = None

    def enable_profiling(self):
        """Wrap every operator in a timed span; returns the profiler.

        The logical executor materializes full trees, so its spans are
        dominated by ``nodes_materialized`` and value lookups — the
        contrast with the physical executor's identifier-only spans is
        the point of profiling it at all.
        """
        from ..observability import Profiler, snapshot_counters

        self.profiler = Profiler(lambda: snapshot_counters(self.store))
        return self.profiler

    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode) -> Collection:
        handler = getattr(self, f"_exec_{plan.op}", None)
        if handler is None:
            raise TranslationError(f"logical executor: unsupported op {plan.op!r}")
        if self.profiler is None:
            return handler(plan)
        detail = plan.describe()[len(plan.op) :].strip()
        with self.profiler.operator(plan.op, detail) as span:
            result = handler(plan)
            span.output_rows = len(result)
        return result

    # ------------------------------------------------------------------
    # Leaf
    # ------------------------------------------------------------------
    def _exec_scan(self, plan: PlanNode) -> Collection:
        doc = plan.params["doc"]
        cached = self._documents.get(doc)
        if cached is None:
            info = self.store.document(doc)
            root = self.store.materialize(info.root_nid, with_content=True)
            cached = Collection([DataTree(root, doc_id=info.doc_id)], name=doc)
            self._documents[doc] = cached
        return cached

    # ------------------------------------------------------------------
    # Straight TAX operators
    # ------------------------------------------------------------------
    def _exec_select(self, plan: PlanNode) -> Collection:
        operator = Selection(plan.params["pattern"], plan.params["sl"])
        return operator.apply(self.execute(plan.child))

    def _exec_project(self, plan: PlanNode) -> Collection:
        operator = Projection(plan.params["pattern"], plan.params["pl"])
        return operator.apply(self.execute(plan.child))

    def _exec_dupelim(self, plan: PlanNode) -> Collection:
        operator = DuplicateElimination(
            plan.params["pattern"],
            plan.params["label"],
            by_nids=plan.params.get("by_nids", False),
        )
        return operator.apply(self.execute(plan.child))

    def _exec_left_outer_join(self, plan: PlanNode) -> Collection:
        operator = Join(
            plan.params["left_pattern"],
            plan.params["right_pattern"],
            plan.params["conditions"],
            JoinKind.LEFT_OUTER,
            plan.params["sl"],
        )
        left = self.execute(plan.inputs[0])
        right = self.execute(plan.inputs[1])
        return operator.apply(left, right)

    def _exec_groupby(self, plan: PlanNode) -> Collection:
        operator = GroupBy(plan.params["pattern"], plan.params["basis"])
        grouped = operator.apply(self.execute(plan.child))
        ordering = plan.params.get("ordering") or []
        if ordering:
            # SORTBY member ordering by path navigation from the member
            # root (missing paths sort as ""), so members lacking the
            # sort path are ordered, not excluded.
            for tree in grouped:
                subroot = tree.root.children[1]
                subroot.children[:] = _order_members(
                    list(subroot.children), tuple(ordering)
                )
        return grouped

    def _exec_rename_root(self, plan: PlanNode) -> Collection:
        return RenameRoot(plan.params["tag"]).apply(self.execute(plan.child))

    def _exec_aggregate(self, plan: PlanNode) -> Collection:
        from ..core.aggregation import Aggregation

        operator = Aggregation(
            plan.params["pattern"],
            plan.params["function"],
            plan.params["source_label"],
            plan.params["new_tag"],
            plan.params["update"],
        )
        return operator.apply(self.execute(plan.child))

    # ------------------------------------------------------------------
    # Construction steps
    # ------------------------------------------------------------------
    def _exec_stitch(self, plan: PlanNode) -> Collection:
        """RETURN processing over joined pair trees.

        Input trees are ``tax_prod_root`` pairs: the first child is the
        left witness (document-root copy over the grouping element's
        subtree), the second — when the pair is not outer-padded — the
        right witness (document-root copy over the grouped element's
        subtree).
        """
        spec: StitchSpec = plan.params["spec"]
        joined = self.execute(plan.child)

        order: list[str] = []
        groups: dict[str, list[XMLNode | None]] = {}
        group_nodes: dict[str, XMLNode] = {}
        for tree in joined:
            children = tree.root.children
            if not children:
                raise TranslationError("stitch: malformed join output")
            left_witness = children[0]
            group_node = _single_child(left_witness, "stitch: left witness")
            value = atomic_value_of(group_node)
            if value not in groups:
                groups[value] = []
                order.append(value)
                group_nodes[value] = group_node
            if len(children) > 1:
                right_witness = children[1]
                member = _single_child(right_witness, "stitch: right witness")
                groups[value].append(member)

        output = Collection(name="stitch")
        for value in order:
            members = [m for m in groups[value] if m is not None]
            members = _order_members(members, spec.ordering)
            output.append(
                DataTree(
                    _build_return_element(
                        spec.return_tag,
                        group_nodes[value],
                        members,
                        _spec_member_path(spec),
                        _spec_mode(spec),
                    )
                )
            )
        return output

    def _exec_project_groups(self, plan: PlanNode) -> Collection:
        """The final projection of the rewritten plan (Fig. 5.d), fused
        with RETURN-element construction.

        Input trees are ``tax_group_root`` trees: first child the
        grouping basis, second the group subroot with the member source
        trees.
        """
        spec: GroupOutputSpec = plan.params["spec"]
        grouped = self.execute(plan.inputs[0])
        if len(plan.inputs) == 2:
            return self._project_groups_padded(spec, grouped, plan.inputs[1])
        output = Collection(name="project-groups")
        for tree in grouped:
            children = tree.root.children
            if len(children) != 2:
                raise TranslationError("project_groups: malformed group tree")
            basis, subroot = children
            if not basis.children:
                raise TranslationError("project_groups: empty grouping basis")
            group_node = basis.children[0]
            # Drop duplicate source trees within the group (the migrated
            # "duplicate elimination based on articles" of the naive
            # plan): keyed by stored nid when available, else by value.
            members = []
            seen: set = set()
            for member in subroot.children:
                key = member.nid if member.nid is not None else member.canonical_key()
                if key in seen:
                    continue
                seen.add(key)
                members.append(member)
            output.append(
                DataTree(
                    _build_return_element(
                        spec.return_tag, group_node, members, spec.member_path, spec.mode
                    )
                )
            )
        return output


    def _exec_nested_groups(self, plan: PlanNode) -> Collection:
        """Join-graph isolation over materialized collections: the three
        isolated blocks re-correlated by value lookups."""
        spec = plan.params["spec"]
        outer = self.execute(plan.inputs[0])
        middle = self.execute(plan.inputs[1])
        grouped = self.execute(plan.inputs[2])

        members_by_value: dict[str, list[XMLNode]] = {}
        for tree in grouped:
            basis, subroot = tree.root.children
            group_node = basis.children[0]
            members = []
            seen: set = set()
            for member in subroot.children:
                key = member.nid if member.nid is not None else member.canonical_key()
                if key in seen:
                    continue
                seen.add(key)
                members.append(member)
            members_by_value[atomic_value_of(group_node)] = members

        # The middle representatives with their link values, populated
        # once each (the representative is the first occurrence of the
        # distinct value — the node the middle FOR binds).
        middle_entries: list[tuple[XMLNode, str, set[str]]] = []
        for tree in middle:
            node = _single_child(tree.root, "nested_groups middle")
            link_values = {
                atomic_value_of(target) for target in _navigate(node, spec.link_path)
            }
            middle_entries.append((node, atomic_value_of(node), link_values))

        output = Collection(name="nested-groups")
        for tree in outer:
            outer_node = _single_child(tree.root, "nested_groups outer")
            outer_value = atomic_value_of(outer_node)
            element = XMLNode(spec.outer_tag)
            element.append_child(outer_node.deep_copy())
            for middle_node, middle_value, link_values in middle_entries:
                if outer_value not in link_values:
                    continue
                element.append_child(
                    _build_return_element(
                        spec.middle_tag,
                        middle_node,
                        members_by_value.get(middle_value, []),
                        spec.member_path,
                        spec.mode,
                    )
                )
            output.append(DataTree(element))
        return output

    def _project_groups_padded(
        self, spec: GroupOutputSpec, grouped: Collection, outer_plan: PlanNode
    ) -> Collection:
        """Emit one element per *outer* distinct value: the group output
        when a group exists, an empty group otherwise (filters can
        orphan values; the outer FOR still yields them)."""
        by_value: dict[str, list[XMLNode]] = {}
        for tree in grouped:
            basis, subroot = tree.root.children
            members = []
            seen: set = set()
            for member in subroot.children:
                key = member.nid if member.nid is not None else member.canonical_key()
                if key in seen:
                    continue
                seen.add(key)
                members.append(member)
            by_value[atomic_value_of(basis.children[0])] = members

        output = Collection(name="project-groups")
        for outer_tree in self.execute(outer_plan):
            outer_node = _single_child(outer_tree.root, "project_groups padding")
            value = atomic_value_of(outer_node)
            # The rep is always the outer distinct occurrence — the
            # group exemplar ranges only over the filtered witnesses.
            built = _build_return_element(
                spec.return_tag,
                outer_node,
                by_value.get(value, []),
                spec.member_path,
                spec.mode,
            )
            output.append(DataTree(built))
        return output


# ----------------------------------------------------------------------
# Shared construction helpers
# ----------------------------------------------------------------------
def _single_child(node: XMLNode, context: str) -> XMLNode:
    if len(node.children) != 1:
        raise TranslationError(f"{context}: expected exactly one child")
    return node.children[0]


def _spec_member_path(spec: StitchSpec) -> tuple[str, ...]:
    for arg in spec.args:
        if arg.kind in ("members", "count", "aggregate"):
            return arg.member_path
    return ()


def _spec_mode(spec: StitchSpec) -> str:
    for arg in spec.args:
        if arg.kind == "count":
            return "count"
        if arg.kind == "aggregate":
            return arg.function or "sum"
    return "values"


def _build_return_element(
    return_tag: str,
    group_node: XMLNode,
    members: list[XMLNode],
    member_path: tuple[str, ...],
    mode: str,
) -> XMLNode:
    """``<return_tag>{group node}{titles... | aggregate}</return_tag>``.

    The shape matches the direct interpreter's constructor output, so
    every engine produces structurally identical results.  ``count``
    counts the output-path nodes reached across members (an article
    without a title contributes nothing — XQuery ``count($t)``
    semantics); the numeric aggregates apply to those nodes' values.
    """
    from ..core.aggregation import AggregateFunction

    root = XMLNode(return_tag)
    root.append_child(group_node.deep_copy())
    if mode == "values":
        for member in members:
            for target in _navigate(member, member_path):
                root.append_child(target.deep_copy())
        return root
    reached = [
        target for member in members for target in _navigate(member, member_path)
    ]
    if mode == "count":
        root.content = str(len(reached))
        return root
    values = [atomic_value_of(node) for node in reached]
    rendered = AggregateFunction(mode.upper()).compute(values)
    root.content = rendered if rendered else None
    return root


def _navigate(node: XMLNode, path: tuple[str, ...]) -> list[XMLNode]:
    frontier = [node]
    for name in path:
        frontier = [child for parent in frontier for child in parent.findall(name)]
    return frontier


def _order_members(
    members: list[XMLNode], ordering: tuple[tuple[tuple[str, ...], str], ...]
) -> list[XMLNode]:
    """SORTBY member ordering for the naive plan's stitch."""
    from ..core.base import numeric_or_text

    if not ordering:
        return members

    def value_at(member: XMLNode, path: tuple[str, ...]) -> str:
        nodes = _navigate(member, path)
        return atomic_value_of(nodes[0]) if nodes else ""

    ordered = members
    for path, direction in reversed(ordering):
        ordered = sorted(
            ordered,
            key=lambda member: numeric_or_text(value_at(member, path)),
            reverse=direction == "DESCENDING",
        )
    return list(ordered)
