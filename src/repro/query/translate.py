"""Naive parsing: XQuery AST -> join-based TAX logical plan (Sec. 4.1/4.2).

"Unfortunately a parser cannot detect the logical grouping in the XQuery
statement right away.  It will 'naively' try to interpret it as a join."
This module is that first pass.  It recognizes the *grouping query
family* — the queries the paper studies — in both surface forms:

* **nested** (Query 1): outer FOR over ``distinct-values``, RETURN with
  ``{$a}`` and a nested FLWR joining back to the database;
* **unnested** (Query 2): the LET formulation
  (``LET $t := document(..)//article[author = $a]/title``).

Both translate to the *same* naive plan shape — the paper's point in
Sec. 4.2 — and both produce the pattern trees of Fig. 4:

* the **outer pattern tree** (Fig. 4.a): document root ad-edge to the
  grouping element; selection + projection + duplicate elimination;
* the **join-plan pattern tree** (Fig. 4.b): a left outer join between
  the outer result and the database, equating the grouping element's
  content across the sides;
* the **inner projection pattern tree** (Fig. 4.c): the RETURN path.

Queries outside the family raise :class:`TranslationError`; the general
fallback is the direct interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TranslationError
from ..pattern.pattern import Axis, PatternNode, PatternTree, pcify
from ..pattern.predicates import ContentCompare, ContentEquals, TagEquals, conjoin
from .ast import (
    AggregateCall,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    Expr,
    FLWR,
    ForClause,
    LetClause,
    PathExpr,
    Step,
    VarRef,
)
from .plan import (
    ArgSpec,
    PlanNode,
    StitchSpec,
    dupelim,
    left_outer_join,
    project,
    scan,
    select,
    stitch,
)


@dataclass(frozen=True)
class GroupingQuery:
    """Normal form of a recognized grouping query."""

    doc: str
    group_tag: str  # the grouping element, e.g. author / institution
    inner_tag: str  # the grouped element, e.g. article
    condition_path: tuple[str, ...]  # path from inner element to the join value
    output_path: tuple[str, ...]  # path from inner element to the output value
    return_tag: str
    mode: str  # "values" | "count" | "sum" | "min" | "max" | "avg"
    nested_form: bool  # True for Query-1 style, False for Query-2 style
    # Ordering requested via SORTBY, as (path from the inner element,
    # direction) pairs — becomes the GROUPBY ordering list (Sec. 4.1:
    # "only if sorting was requested by the user").
    ordering: tuple[tuple[tuple[str, ...], str], ...] = ()
    # Extra inner-WHERE conjuncts: (path from the inner element, op,
    # literal) filters, e.g. AND $b/year > "1995".  They become value
    # predicates on the selection pattern trees.
    filters: tuple[tuple[tuple[str, ...], str, str], ...] = ()


@dataclass(frozen=True)
class NestedGroupingQuery:
    """Normal form of a recognized 3-level nested grouping query.

    The outer FOR iterates distinct values of ``outer_group_tag``; the
    middle FOR iterates distinct values of ``inner.group_tag`` filtered
    by ``outer_var = $middle/link_path``; the middle RETURN is exactly
    the 2-level grouping family (``inner``), so join-graph isolation can
    collapse the whole query into one single-block grouping plan.
    """

    doc: str
    outer_group_tag: str  # e.g. institution
    link_path: tuple[str, ...]  # middle element -> outer value, e.g. (institution,)
    outer_return_tag: str  # e.g. instpubs
    inner: GroupingQuery  # the middle/inner 2-level grouping segment


def recognize(expr: Expr) -> GroupingQuery:
    """Classify an AST as a grouping query or raise TranslationError."""
    if not isinstance(expr, FLWR):
        raise TranslationError("only FLWR expressions are translated")
    if not expr.clauses or not isinstance(expr.clauses[0], ForClause):
        raise TranslationError("expected an outer FOR clause")
    outer = expr.clauses[0]
    doc, group_tag = _parse_distinct_over_document(outer.source)
    if expr.where is not None:
        # An outer filter is outside the Sec. 4.1 family; refusing here
        # (instead of silently dropping the predicate) routes the query
        # to the direct interpreter, which evaluates it correctly.
        raise TranslationError("outer WHERE is not part of the grouping family")

    if len(expr.clauses) == 1:
        return _recognize_nested(expr, outer.var, doc, group_tag)
    if len(expr.clauses) == 2 and isinstance(expr.clauses[1], LetClause):
        return _recognize_unnested(expr, outer.var, doc, group_tag)
    raise TranslationError("unsupported clause structure for grouping translation")


def recognize_nested(expr: Expr) -> NestedGroupingQuery:
    """Classify an AST as a *3-level* nested grouping query.

    The shape (the paper's third Sec. 1 query — E4's family)::

        FOR $i IN distinct-values(document(..)//G1)
        RETURN <outer> {$i} {
          FOR $a IN distinct-values(document(..)//G2)
          WHERE $i = $a/link
          RETURN <middle> {$a} { ...2-level inner FLWR over $a... } </middle>
        } </outer>

    Raises :class:`TranslationError` outside the family.
    """
    if not isinstance(expr, FLWR):
        raise TranslationError("only FLWR expressions are translated")
    if len(expr.clauses) != 1 or not isinstance(expr.clauses[0], ForClause):
        raise TranslationError("nested grouping needs a single outer FOR clause")
    outer = expr.clauses[0]
    doc, outer_group_tag = _parse_distinct_over_document(outer.source)
    if expr.where is not None:
        raise TranslationError("outer WHERE is not part of the nested grouping family")
    if expr.sortby:
        raise TranslationError("SORTBY on the outer FLWR is not translatable")

    constructor = _return_constructor(expr.ret)
    args = _embedded_args(constructor, outer.var)
    middle = args["inner"]
    if not isinstance(middle, FLWR):
        raise TranslationError("second RETURN argument must be a nested FLWR")
    if len(middle.clauses) != 1 or not isinstance(middle.clauses[0], ForClause):
        raise TranslationError("middle FLWR must have a single FOR clause")
    middle_for = middle.clauses[0]
    middle_doc, middle_group_tag = _parse_distinct_over_document(middle_for.source)
    if middle_doc != doc:
        raise TranslationError("middle FOR must query the same document")
    link_path, middle_filters = _where_parts(middle.where, outer.var, middle_for.var)
    if middle_filters:
        # Middle-level value filters are outside the collapse family;
        # the direct interpreter evaluates them correctly.
        raise TranslationError("middle WHERE filters are not translatable")
    # The middle FLWR's RETURN is exactly the 2-level nested grouping
    # shape with the middle variable as its "outer" variable.
    inner = _recognize_nested(middle, middle_for.var, doc, middle_group_tag)
    return NestedGroupingQuery(
        doc=doc,
        outer_group_tag=outer_group_tag,
        link_path=link_path,
        outer_return_tag=constructor.tag,
        inner=inner,
    )


def _parse_distinct_over_document(source: Expr) -> tuple[str, str]:
    if not isinstance(source, DistinctValues):
        raise TranslationError("outer FOR must iterate distinct-values(...)")
    path = source.argument
    if (
        not isinstance(path, PathExpr)
        or not isinstance(path.base, DocumentCall)
        or len(path.steps) != 1
        or path.steps[0].axis != "//"
        or path.steps[0].predicate is not None
    ):
        raise TranslationError(
            "outer FOR must iterate distinct-values(document(..)//tag)"
        )
    return path.base.name, path.steps[0].name


def _recognize_nested(expr: FLWR, outer_var: str, doc: str, group_tag: str) -> GroupingQuery:
    if expr.sortby:
        raise TranslationError("SORTBY on the outer FLWR is not translatable")
    constructor = _return_constructor(expr.ret)
    args = _embedded_args(constructor, outer_var)
    inner_expr = args["inner"]
    mode = "values"
    if isinstance(inner_expr, CountCall):
        inner_expr = inner_expr.argument
        mode = "count"
    elif isinstance(inner_expr, AggregateCall):
        mode = inner_expr.function  # sum | min | max | avg
        inner_expr = inner_expr.argument
    if not isinstance(inner_expr, FLWR):
        raise TranslationError("second RETURN argument must be a nested FLWR")
    inner = inner_expr
    if len(inner.clauses) != 1 or not isinstance(inner.clauses[0], ForClause):
        raise TranslationError("nested FLWR must have a single FOR clause")
    inner_for = inner.clauses[0]
    inner_tag = _document_descendant_tag(inner_for.source, doc)
    condition_path, filters = _where_parts(inner.where, outer_var, inner_for.var)
    output_path = _relative_path(inner.ret, inner_for.var)
    ordering = _ordering_from_sortby(inner, output_path, mode)
    return GroupingQuery(
        doc=doc,
        group_tag=group_tag,
        inner_tag=inner_tag,
        condition_path=condition_path,
        output_path=output_path,
        return_tag=constructor.tag,
        mode=mode,
        nested_form=True,
        ordering=ordering,
        filters=filters,
    )


def _ordering_from_sortby(
    inner: FLWR, output_path: tuple[str, ...], mode: str
) -> tuple[tuple[tuple[str, ...], str], ...]:
    """Translate the inner SORTBY keys to paths from the inner element.

    A ``.`` key sorts by the returned value itself (the output path);
    other keys are relative to the returned node.
    """
    if not inner.sortby:
        return ()
    if mode != "values":
        raise TranslationError("SORTBY is meaningless under an aggregate")
    ordering = []
    for key in inner.sortby:
        if key.path == (".",):
            path = output_path
        else:
            path = output_path + key.path
        ordering.append((path, key.direction))
    return tuple(ordering)


def _recognize_unnested(expr: FLWR, outer_var: str, doc: str, group_tag: str) -> GroupingQuery:
    let = expr.clauses[1]
    assert isinstance(let, LetClause)
    source = let.source
    if not isinstance(source, PathExpr) or not isinstance(source.base, DocumentCall):
        raise TranslationError("LET must bind a document path")
    if source.base.name != doc:
        raise TranslationError("LET must query the same document as the outer FOR")
    steps = source.steps
    if not steps or steps[0].axis != "//" or steps[0].predicate is None:
        raise TranslationError(
            "LET path must look like document(..)//tag[path = $var]/..."
        )
    inner_tag = steps[0].name
    predicate = steps[0].predicate
    if predicate.op != "=" or not isinstance(predicate.right, VarRef):
        raise TranslationError("LET predicate must compare a path to the outer var")
    if predicate.right.name != outer_var:
        raise TranslationError("LET predicate must reference the outer variable")
    condition_path = predicate.path
    output_path = tuple(step.name for step in steps[1:])
    for step in steps[1:]:
        if step.axis != "/" or step.predicate is not None:
            raise TranslationError("LET output path must use simple child steps")

    constructor = _return_constructor(expr.ret)
    args = _embedded_args(constructor, outer_var)
    inner_expr = args["inner"]
    mode = "values"
    if isinstance(inner_expr, CountCall):
        inner_expr = inner_expr.argument
        mode = "count"
    elif isinstance(inner_expr, AggregateCall):
        mode = inner_expr.function
        inner_expr = inner_expr.argument
    if not isinstance(inner_expr, VarRef) or inner_expr.name != let.var:
        raise TranslationError("second RETURN argument must use the LET variable")
    if expr.sortby:
        raise TranslationError("SORTBY on the outer FLWR is not translatable")
    return GroupingQuery(
        doc=doc,
        group_tag=group_tag,
        inner_tag=inner_tag,
        condition_path=condition_path,
        output_path=output_path,
        return_tag=constructor.tag,
        mode=mode,
        nested_form=False,
    )


def _return_constructor(ret: Expr) -> ElementConstructor:
    if not isinstance(ret, ElementConstructor):
        raise TranslationError("RETURN must construct an element")
    return ret


def _embedded_args(constructor: ElementConstructor, outer_var: str) -> dict[str, Expr]:
    embedded = [item for item in constructor.items if isinstance(item, EmbeddedExpr)]
    if len(embedded) != 2:
        raise TranslationError("RETURN must have exactly two embedded expressions")
    first = embedded[0].expr
    if not isinstance(first, VarRef) or first.name != outer_var:
        raise TranslationError("first RETURN argument must be the outer variable")
    return {"outer": first, "inner": embedded[1].expr}


def _document_descendant_tag(source: Expr, doc: str) -> str:
    if (
        not isinstance(source, PathExpr)
        or not isinstance(source.base, DocumentCall)
        or source.base.name != doc
        or len(source.steps) != 1
        or source.steps[0].axis != "//"
        or source.steps[0].predicate is not None
    ):
        raise TranslationError("inner FOR must iterate document(..)//tag")
    return source.steps[0].name


def _where_parts(
    where: Expr | None, outer_var: str, inner_var: str
) -> tuple[tuple[str, ...], tuple[tuple[tuple[str, ...], str, str], ...]]:
    """Split the inner WHERE into the join condition and value filters.

    Exactly one conjunct must equate the outer variable with a path from
    the inner variable (the join condition); every other conjunct must
    compare an inner-variable path with a string literal and becomes a
    selection filter.
    """
    from .ast import AndExpr, Comparison, StringLiteral

    if isinstance(where, Comparison):
        conjuncts: list[Comparison] = [where]
    elif isinstance(where, AndExpr):
        conjuncts = []
        for part in where.parts:
            if not isinstance(part, Comparison):
                raise TranslationError("inner WHERE conjuncts must be comparisons")
            conjuncts.append(part)
    else:
        raise TranslationError("inner WHERE must be a comparison (or AND of them)")

    condition_path: tuple[str, ...] | None = None
    filters: list[tuple[tuple[str, ...], str, str]] = []
    for comparison in conjuncts:
        left, right = comparison.left, comparison.right
        if comparison.op == "=" and (
            (isinstance(left, VarRef) and left.name == outer_var)
            or (isinstance(right, VarRef) and right.name == outer_var)
        ):
            if condition_path is not None:
                raise TranslationError("inner WHERE references the outer variable twice")
            path_side = right if isinstance(left, VarRef) and left.name == outer_var else left
            if (
                not isinstance(path_side, PathExpr)
                or not isinstance(path_side.base, VarRef)
                or path_side.base.name != inner_var
            ):
                raise TranslationError("inner WHERE must navigate from the inner variable")
            condition_path = tuple(_simple_child_path(path_side.steps))
            continue
        # A value filter: $b/path op "literal" (either orientation).
        if isinstance(right, StringLiteral):
            path_expr, literal, op = left, right.value, comparison.op
        elif isinstance(left, StringLiteral):
            path_expr, literal = right, left.value
            op = _flip_op(comparison.op)
        else:
            raise TranslationError("inner WHERE filters must compare against a literal")
        if (
            not isinstance(path_expr, PathExpr)
            or not isinstance(path_expr.base, VarRef)
            or path_expr.base.name != inner_var
        ):
            raise TranslationError("inner WHERE filters must navigate the inner variable")
        filters.append((tuple(_simple_child_path(path_expr.steps)), op, literal))

    if condition_path is None:
        raise TranslationError("inner WHERE must compare against the outer variable")
    return condition_path, tuple(filters)


def _flip_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _relative_path(ret: Expr, inner_var: str) -> tuple[str, ...]:
    if (
        not isinstance(ret, PathExpr)
        or not isinstance(ret.base, VarRef)
        or ret.base.name != inner_var
    ):
        raise TranslationError("inner RETURN must navigate from the inner variable")
    return tuple(_simple_child_path(ret.steps))


def _simple_child_path(steps: tuple[Step, ...]) -> list[str]:
    names = []
    for step in steps:
        if step.axis != "/":
            raise TranslationError("relative paths must use simple child steps")
        if step.predicate is not None:
            raise TranslationError("relative paths must not carry predicates")
        names.append(step.name)
    if not names:
        raise TranslationError("relative path must have at least one step")
    return names


# ----------------------------------------------------------------------
# Pattern construction (Fig. 4)
# ----------------------------------------------------------------------
ROOT_LABEL = "$1"
OUTER_GROUP_LABEL = "$2"
RIGHT_ROOT_LABEL = "$4"
INNER_LABEL = "$5"
JOIN_VALUE_LABEL = "$6"


def outer_pattern(root_tag: str, group_tag: str) -> PatternTree:
    """Fig. 4.a: ``$1[doc_root] --ad--> $2[group_tag]``."""
    root = PatternNode(ROOT_LABEL, TagEquals(root_tag))
    root.add(OUTER_GROUP_LABEL, TagEquals(group_tag), Axis.AD)
    return PatternTree(root)


def join_right_pattern(
    root_tag: str,
    inner_tag: str,
    condition_path: tuple[str, ...],
    filters: tuple[tuple[tuple[str, ...], str, str], ...] = (),
) -> PatternTree:
    """The right ("inner") side of Fig. 4.b.

    ``$4[doc_root] --ad--> $5[inner_tag] --pc--> ... --pc--> $6[value]``
    with intermediate path elements labelled ``$5a``, ``$5b``, ...
    Inner-WHERE filters add further pc chains under the inner element
    whose leaf predicates carry the value conditions.
    """
    root = PatternNode(RIGHT_ROOT_LABEL, TagEquals(root_tag))
    inner = root.add(INNER_LABEL, TagEquals(inner_tag), Axis.AD)
    current = inner
    for index, name in enumerate(condition_path):
        is_last = index == len(condition_path) - 1
        label = JOIN_VALUE_LABEL if is_last else f"{INNER_LABEL}{chr(ord('a') + index)}"
        current = current.add(label, TagEquals(name), Axis.PC)
    attach_filter_chains(inner, filters)
    return PatternTree(root)


def attach_filter_chains(
    inner: PatternNode, filters: tuple[tuple[tuple[str, ...], str, str], ...]
) -> None:
    """Add one pc chain per filter under ``inner``; the leaf predicate
    conjoins the tag test with the value condition."""
    for filter_index, (path, op, literal) in enumerate(filters):
        current = inner
        for step_index, name in enumerate(path):
            is_last = step_index == len(path) - 1
            label = (
                f"$f{filter_index}"
                if is_last
                else f"$f{filter_index}{chr(ord('a') + step_index)}"
            )
            if is_last:
                value_predicate = (
                    ContentEquals(literal) if op == "=" else ContentCompare(op, literal)
                )
                predicate = conjoin(TagEquals(name), value_predicate)
            else:
                predicate = TagEquals(name)
            current = current.add(label, predicate, Axis.PC)


def naive_plan(query: GroupingQuery, root_tag: str) -> PlanNode:
    """Build the naive (join-based) logical plan of Sec. 4.1.

    ``root_tag`` is the tag of the stored document's root element
    (catalog information; ``doc_root`` in the paper's figures).
    """
    p_outer = outer_pattern(root_tag, query.group_tag)
    database = scan(query.doc)

    # Step 1: outer selection, projection, duplicate elimination.  The
    # projection reuses the selection's pattern with ad edges turned pc
    # (footnote 7 of the paper).
    selected = select(database, p_outer, {OUTER_GROUP_LABEL})
    p_outer_pc = pcify(p_outer)
    projected = project(
        selected, p_outer_pc, [ROOT_LABEL, OUTER_GROUP_LABEL + "*"]
    )
    distinct = dupelim(projected, p_outer_pc, OUTER_GROUP_LABEL)

    # Step 2a: the join-plan pattern tree (left outer join with the DB).
    p_left = outer_pattern(root_tag, query.group_tag)
    p_right = join_right_pattern(
        root_tag, query.inner_tag, query.condition_path, query.filters
    )
    joined = left_outer_join(
        distinct,
        database,
        p_left,
        p_right,
        conditions=[(OUTER_GROUP_LABEL, JOIN_VALUE_LABEL)],
        # Both the article and the grouping element keep their entire
        # subtrees: ``{$a}`` returns the author node with everything
        # below it (institutions etc.), matching Fig. 5.d's ``$4*``.
        sl={INNER_LABEL, OUTER_GROUP_LABEL},
    )
    # "Following this join operation there will be a projection with
    # projection list $5* and then a duplicate elimination based on
    # articles" — realized as an identity-keyed duplicate elimination
    # over the joined pair trees: repeated (author, article) pairs merge,
    # but two distinct lookalike articles never do.
    deduped = dupelim(joined, by_nids=True)

    # Step 2b + stitching: RETURN-argument processing per outer binding.
    if query.mode == "count":
        args = (
            ArgSpec(kind="outer"),
            ArgSpec(kind="count", member_path=query.output_path),
        )
    elif query.mode == "values":
        args = (
            ArgSpec(kind="outer"),
            ArgSpec(kind="members", member_path=query.output_path),
        )
    else:
        args = (
            ArgSpec(kind="outer"),
            ArgSpec(
                kind="aggregate",
                member_path=query.output_path,
                function=query.mode,
            ),
        )
    spec = StitchSpec(
        return_tag=query.return_tag,
        outer_label=OUTER_GROUP_LABEL,
        inner_label=INNER_LABEL,
        args=args,
        ordering=query.ordering,
    )
    return stitch(deduped, spec)


def translate(expr: Expr, root_tag: str) -> tuple[GroupingQuery, PlanNode]:
    """Recognize and naively translate; returns the normal form and plan."""
    query = recognize(expr)
    return query, naive_plan(query, root_tag)
