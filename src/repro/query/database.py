"""The Database facade — TIMBER's architecture in one object (Fig. 12).

Wraps the storage manager, index manager, query parser/translator/
rewriter, and the three evaluators behind one API:

>>> db = Database()                         # in-memory; pass a path to persist
>>> report = db.load(text="<doc_root>...</doc_root>", name="bib.xml")
>>> result = db.query(QUERY_TEXT)           # auto: rewrite to GROUPBY if possible
>>> result.collection.sketch()

``load`` accepts exactly one source — ``text=``, ``tree=``, or
``path=`` — and returns a :class:`LoadReport` (document name, node
count, data generation, columnar-snapshot state).  The historical
``load_text``/``load_tree``/``load_file`` wrappers still work but emit
:class:`DeprecationWarning`.

``plan`` selects the engine (a :class:`PlanMode`, or its string value):

* ``auto`` — translate + rewrite to the GROUPBY physical plan; fall
  back to the direct interpreter when the query is outside the
  translatable family;
* ``direct`` — the paper's baseline: direct execution as written;
* ``naive`` / ``naive-hash`` — the naive join plan, executed physically
  (nested loops, or an amortized hash value-join);
* ``groupby`` — the rewritten plan, executed physically;
* ``logical-naive`` / ``logical-groupby`` — the same two plans run
  with the in-memory reference operators (semantics oracle).

Observability entry points:

* ``db.explain(text)`` — the candidate plans *without* executing
  (:class:`Explanation`: a string, plus ``render()``/``to_dict()``);
* ``db.query(text, analyze=True)`` — execute and attach an
  :class:`~repro.observability.ExecutionProfile` (per-operator timed
  spans with counter deltas) to the result;
* ``with QueryTrace() as t: db.query(...)`` — hand every profiled
  execution to external collectors.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from enum import Enum

from ..cancellation import Deadline, deadline_scope
from ..errors import DatabaseError, TranslationError
from ..indexing.manager import IndexManager
from ..observability import (
    CounterSnapshot,
    ExecutionProfile,
    QueryTrace,
    TraceEvent,
    active_traces,
    snapshot_counters,
)
from ..storage.buffer import DEFAULT_POOL_FRAMES
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection
from .ast import Expr
from .interpreter import Interpreter
from .logical_exec import LogicalExecutor
from .optimizer import FeedbackLoop, Optimizer, PlanDecision
from .parser import parse_query
from .physical import PhysicalExecutor
from .plan import PlanNode
from .rewrite import collapse_nested, rewrite
from .translate import recognize_nested, translate


class PlanMode(str, Enum):
    """The execution engines the facade can dispatch to.

    Members compare equal to their string values, so every historical
    string form (``"groupby"``, ``"naive-hash"``, ...) keeps working.
    """

    AUTO = "auto"
    DIRECT = "direct"
    NAIVE = "naive"
    NAIVE_HASH = "naive-hash"
    GROUPBY = "groupby"
    LOGICAL_NAIVE = "logical-naive"
    LOGICAL_GROUPBY = "logical-groupby"


#: String values, kept for backward compatibility with pre-enum callers.
PLAN_MODES = tuple(mode.value for mode in PlanMode)

#: Environment values that disable the columnar hot path.
_COLUMNAR_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def _columnar_default() -> bool:
    """Resolve the ``REPRO_COLUMNAR`` environment flag (default: on)."""
    return os.environ.get("REPRO_COLUMNAR", "").strip().lower() not in _COLUMNAR_OFF_VALUES


def _optimizer_default() -> bool:
    """Resolve the ``REPRO_OPTIMIZER`` environment flag (default: on)."""
    return os.environ.get("REPRO_OPTIMIZER", "").strip().lower() not in _COLUMNAR_OFF_VALUES


@dataclass(frozen=True)
class LoadReport:
    """What :meth:`Database.load` did.

    * ``document`` — the catalog name the document was stored under;
    * ``nodes`` — node count of the loaded document;
    * ``generation`` — the store's data generation after the load;
    * ``columnar`` — columnar-snapshot state after the load:
      ``"pending"`` (built lazily on first query), ``"ready"`` (already
      materialized, e.g. restored from disk), or ``"disabled"`` (the
      database runs without indexes or with columnar turned off).

    Streaming loads (``stream=``/``path=``, any ``batch_size``) also
    report the incremental shape:

    * ``batches`` — journaled batch commits the load took;
    * ``nodes_streamed`` — records committed by those batches;
    * ``progress`` — the per-batch
      :class:`~repro.ingest.session.BatchProgress` records, in commit
      order (empty for the legacy whole-document paths).
    """

    document: str
    nodes: int
    generation: int
    columnar: str
    batches: int = 1
    nodes_streamed: int = 0
    progress: tuple = ()


#: The buffer/disk counters surfaced as ``QueryResult.io_stats``.
_IO_KEYS = (
    "hits",
    "misses",
    "evictions",
    "dirty_writebacks",
    "physical_reads",
    "physical_writes",
)


@dataclass
class QueryResult:
    """Execution outcome: the result collection plus run metadata.

    * ``statistics`` — the store's merged counters after the run (a
      plain dict, as before);
    * ``plan`` — the executed :class:`PlanNode` tree (``None`` for the
      direct interpreter);
    * ``io_stats`` — the buffer-pool and disk subset of the counters,
      plus the derived ``pages_touched``;
    * ``profile`` — the per-operator
      :class:`~repro.observability.ExecutionProfile`, present when the
      query ran with ``analyze=True`` or under an active trace.
    """

    collection: Collection
    plan_mode: str
    elapsed_seconds: float
    statistics: dict[str, int] = field(default_factory=dict)
    plan: PlanNode | None = None
    profile: ExecutionProfile | None = None
    io_stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.collection)

    def to_xml(self, indent: str | None = "  ") -> str:
        """The result collection rendered as XML text, one document
        fragment per tree."""
        from ..xmlmodel.serialize import serialize

        parts = [serialize(tree.root, indent=indent) for tree in self.collection]
        joiner = "" if indent else "\n"
        return joiner.join(parts)


@dataclass(frozen=True)
class PreparedQuery:
    """A parsed and planned query, ready to execute (and to cache).

    Produced by :meth:`Database.prepare`; executed by
    :meth:`Database.execute`.  The service layer's plan cache stores
    these: preparation (parse + translate + rewrite) is the part of a
    query whose cost is identical across repetitions, so a cache hit
    skips it entirely.

    ``generation`` records the store's data generation at preparation
    time; a prepared query is re-plannable when the store has changed
    (document set, nids) since.
    """

    text: str
    requested: "PlanMode"  # what the caller asked for (may be AUTO)
    resolved: "PlanMode"  # the concrete engine AUTO settled on
    expr: Expr
    plan: PlanNode | None  # None for the direct interpreter
    join_strategy: str = "nested-loop"
    generation: int = 0
    decision: PlanDecision | None = None  # the cost model's choice (AUTO)
    stats_version: int = 0  # statistics version the plan was costed against


class Explanation(str):
    """The stable rendering contract for ``db.explain()``.

    It *is* the human-readable text (a ``str`` subclass, so existing
    callers that print or substring-match keep working), and it carries
    the structured payload behind :meth:`to_dict`.  :meth:`render`
    returns the text explicitly, for symmetry with
    :class:`~repro.observability.ExecutionProfile`.
    """

    _payload: dict

    def __new__(cls, text: str, payload: dict) -> "Explanation":
        obj = super().__new__(cls, text)
        obj._payload = payload
        return obj

    def render(self) -> str:
        """The human-readable plan comparison."""
        return str(self)

    def to_dict(self) -> dict:
        """Structured plans (and optimizer estimates when verbose)."""
        return self._payload

    def with_section(self, title: str, text: str, **payload) -> "Explanation":
        """A new :class:`Explanation` with an extra titled section
        prepended (and its payload merged) — how the cluster
        coordinator stacks its ``=== cluster plan ===`` on top of a
        shard's local explanation."""
        combined = f"=== {title} ===\n{text.rstrip()}\n\n{str(self)}"
        return Explanation(combined, {**self._payload, **payload})


class Database:
    """A native XML database instance."""

    def __init__(
        self,
        directory: str | None = None,
        pool_frames: int = DEFAULT_POOL_FRAMES,
        grouping_strategy: str | None = None,
        use_indexes: bool = True,
        fault_plan: "FaultPlan | None" = None,
        degraded: bool = False,
        columnar: bool | None = None,
        optimizer: bool | None = None,
    ):
        """Open (or create) a database.

        ``fault_plan`` installs a fault-injection plan on the storage
        layer (tests, CI; see :mod:`repro.storage.faults`).
        ``degraded=True`` opens a damaged directory anyway: unreadable
        pages are quarantined, the documents on them dropped, and the
        indexes rebuilt over what survives — instead of the default
        fail-loudly behaviour.  ``columnar`` enables the columnar
        XPath-accelerator hot path (``None`` defers to the
        ``REPRO_COLUMNAR`` environment flag; default on).  It has no
        effect when ``use_indexes=False`` — the columnar table is
        derived from the tag index.  ``optimizer`` enables the
        cost-based optimizer on AUTO plan selection (``None`` defers to
        ``REPRO_OPTIMIZER``; default on).  ``grouping_strategy`` forces
        one GROUPBY implementation (``"sort"``/``"hash"``/
        ``"replicate"``/``"value-index"``); the default ``None`` lets
        the optimizer cost the strategies (falling back to the paper's
        sort default when the optimizer is off).
        """
        self.store = NodeStore(
            directory, pool_frames=pool_frames, fault_plan=fault_plan, degraded=degraded
        )
        self.indexes = IndexManager(self.store)
        self.grouping_strategy = grouping_strategy or "sort"
        self._grouping_forced = grouping_strategy is not None
        self.use_indexes = use_indexes
        self.columnar_enabled = _columnar_default() if columnar is None else bool(columnar)
        self.optimizer_enabled = (
            _optimizer_default() if optimizer is None else bool(optimizer)
        )
        self._feedback = FeedbackLoop()
        if self.store.documents():
            # Reopen path: persisted indexes when fresh, else rebuild.
            if directory is None or not self.indexes.try_load(directory):
                self.indexes.build()
                if directory is not None:
                    self.indexes.save(directory)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        *,
        text: str | None = None,
        tree: XMLNode | None = None,
        path: str | None = None,
        stream=None,
        name: str | None = None,
        batch_size: int | None = None,
        on_batch=None,
    ) -> LoadReport:
        """Store an XML document from exactly one source.

        Pass exactly one of ``text=`` (XML source string), ``tree=``
        (an in-memory :class:`~repro.xmlmodel.node.XMLNode`),
        ``path=`` (a file to parse), or ``stream=`` (a file-like
        object or iterable of text chunks).  ``name`` is the catalog
        name — required for ``text``/``tree``/``stream``, defaulted
        from the filename for ``path``.  Returns a :class:`LoadReport`.

        ``path=`` and ``stream=`` run the streaming ingest: the input
        is parsed incrementally (memory bounded by ``batch_size`` plus
        the largest single root child, never the document) and
        committed in journaled batches of roughly ``batch_size`` nodes
        (default :data:`~repro.ingest.session.DEFAULT_BATCH_NODES`),
        each batch folded into the live indexes incrementally and
        bumping the store generation.  ``on_batch`` (a
        ``BatchProgress -> None`` callable) observes each commit.
        ``text=`` joins the streaming path when ``batch_size`` is
        given; ``tree=`` is always a whole-document load.
        """
        sources = [s for s in (text, tree, path, stream) if s is not None]
        if len(sources) != 1:
            raise DatabaseError(
                "load() needs exactly one source: text=, tree=, path=, or stream="
            )
        if tree is not None or (text is not None and batch_size is None):
            if name is None:
                raise DatabaseError("load() requires name= for text/tree sources")
            if text is not None:
                info = self.store.load_text(text, name)
            else:
                info = self.store.load_tree(tree, name)
            self._reindex()
            return LoadReport(
                document=info.name,
                nodes=info.n_nodes,
                generation=self.store.generation,
                columnar=self._columnar_state(),
            )
        from ..ingest.session import chunks_of

        if path is not None:
            name = name or os.path.basename(path)
            try:
                handle = open(path, encoding="utf-8")
            except OSError as exc:
                raise DatabaseError(
                    f"cannot read document file {path!r}: {exc}"
                ) from exc
            try:
                return self._load_streaming(
                    chunks_of(handle),
                    name,
                    batch_size,
                    on_batch,
                    drop_partial=True,
                )
            finally:
                handle.close()
        if name is None:
            raise DatabaseError("load() requires name= for text/stream sources")
        if text is not None:
            return self._load_streaming(
                chunks_of(text), name, batch_size, on_batch, drop_partial=True
            )
        return self._load_streaming(
            chunks_of(stream), name, batch_size, on_batch, drop_partial=False
        )

    def _load_streaming(
        self,
        chunks,
        name: str,
        batch_size: int | None,
        on_batch,
        drop_partial: bool,
    ) -> LoadReport:
        """The streaming ingest path behind :meth:`load`.

        ``drop_partial=True`` restores the whole-document paths'
        atomicity: a mid-stream failure (parse error, I/O) drops the
        partially ingested document before re-raising.  ``stream=``
        sources keep their committed batches instead — the wire
        protocol's contract that a truncated upload leaves the store at
        the last batch boundary.
        """
        from ..ingest.session import IngestSession

        self.indexes.ensure_built()
        session = IngestSession(
            self.store,
            name,
            batch_size=batch_size,
            indexes=self.indexes,
            on_batch=on_batch,
        )
        try:
            for chunk in chunks:
                session.feed(chunk)
            info = session.finish()
        except BaseException:
            session.abort()
            if drop_partial and session.batches_committed:
                try:
                    self.drop_document(name)
                except DatabaseError:  # pragma: no cover - best effort
                    pass
            raise
        if self.store.directory is not None:
            self.indexes.save(self.store.directory)
        return LoadReport(
            document=info.name,
            nodes=info.n_nodes,
            generation=self.store.generation,
            columnar=self._columnar_state(),
            batches=session.batches_committed,
            nodes_streamed=session.nodes_streamed,
            progress=tuple(session.progress),
        )

    def _columnar_state(self) -> str:
        if not (self.use_indexes and self.columnar_enabled):
            return "disabled"
        return self.indexes.columnar_status()["state"]

    def load_text(self, text: str, name: str) -> None:
        """Deprecated: use ``load(text=..., name=...)``."""
        warnings.warn(
            "Database.load_text() is deprecated; use load(text=..., name=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.load(text=text, name=name)

    def load_tree(self, root: XMLNode, name: str) -> None:
        """Deprecated: use ``load(tree=..., name=...)``."""
        warnings.warn(
            "Database.load_tree() is deprecated; use load(tree=..., name=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.load(tree=root, name=name)

    def load_file(self, path: str, name: str | None = None) -> None:
        """Deprecated: use ``load(path=..., name=...)``."""
        warnings.warn(
            "Database.load_file() is deprecated; use load(path=..., name=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.load(path=path, name=name)

    def drop_document(self, name: str) -> None:
        """Drop a document and rebuild the indexes over the rest."""
        self.store.drop_document(name)
        self._reindex()

    def compact(self) -> None:
        """Reclaim space left by dropped documents (store rebuild)."""
        self.store = self.store.compact()
        self.indexes = IndexManager(self.store)
        self._reindex()

    def _reindex(self) -> None:
        self.indexes.build()
        if self.store.directory is not None:
            self.indexes.save(self.store.directory)

    def documents(self) -> list[str]:
        return [info.name for info in self.store.documents()]

    @property
    def data_generation(self) -> int:
        """The store's monotonic data-generation counter.

        Bumped by every mutation (load, drop, compact, repair) —
        including across :meth:`compact`'s store replacement — so
        caches keyed on it are invalidated by any data change.
        """
        return self.store.generation

    @property
    def statistics_version(self) -> int:
        """The version of the load-time statistics the optimizer costs
        plans against (the store generation they were built at).  Cache
        keys embed this so a statistics refresh always re-plans."""
        if not self.use_indexes:
            return 0
        return self.indexes.statistics_version()

    def info(self) -> dict[str, object]:
        """Summary of the database: documents, sizes, index statistics."""
        self.indexes.ensure_built()
        symbols = self.store.meta.symbols
        tag_counts = {
            symbols.name(sym): self.indexes.tag_index.count(sym)
            for sym in self.indexes.tag_index.tags()
        }
        return {
            "documents": [
                {"name": info.name, "nodes": info.n_nodes}
                for info in self.store.documents()
            ],
            "total_nodes": self.store.n_nodes(),
            "pages": self.store.disk.n_pages,
            "buffer_frames": self.store.pool.capacity,
            "tags": tag_counts,
            "value_index_keys": self.indexes.value_index.n_keys(),
        }

    def root_tag(self, doc: str) -> str:
        """Catalog lookup: the tag of the document's root element."""
        info = self.store.document(doc)
        return self.store.tag(info.root_nid)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def verify(self):
        """Storage health check: page checksums, catalog consistency,
        and persisted-index freshness.  Returns a
        :class:`~repro.storage.store.VerifyReport`; read-only."""
        report = self.store.verify()
        if self.store.directory is not None:
            from ..indexing.persist import snapshot_is_fresh

            report.index_fresh = snapshot_is_fresh(self.store.meta, self.store.directory)
        return report

    def repair(self):
        """Quarantine unrecoverable pages, drop the documents on them,
        and rebuild the indexes over the surviving documents.  Returns
        the storage layer's :class:`~repro.storage.store.RepairReport`."""
        report = self.store.repair()
        self._reindex()
        return report

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def parse(self, text: str) -> Expr:
        return parse_query(text)

    def plans_for(self, text: str) -> tuple[PlanNode | None, PlanNode]:
        """The naive plan and its GROUPBY rewrite for a query text.

        For a 3-level nested FLWR there is no single naive join plan —
        join-graph isolation collapses the nesting directly into a
        grouping plan, so the first element is ``None``.
        """
        expr = self.parse(text)
        doc = self._target_document(expr)
        root_tag = self.root_tag(doc)
        try:
            _, naive = translate(expr, root_tag)
        except TranslationError:
            return None, collapse_nested(recognize_nested(expr), root_tag)
        return naive, rewrite(naive)

    def _match_strategy_status(self) -> dict[str, object]:
        """The structural-match strategy EXPLAIN reports — *without*
        building anything (EXPLAIN must not execute)."""
        if not self.use_indexes:
            return {"strategy": "object-walk", "reason": "use_indexes=False"}
        if not self.columnar_enabled:
            return {"strategy": "object-walk", "reason": "columnar disabled"}
        return {"strategy": "columnar", "snapshot": self.indexes.columnar_status()}

    @staticmethod
    def _render_match_strategy(status: dict[str, object]) -> str:
        if status["strategy"] == "columnar":
            snapshot = status["snapshot"]
            detail = f"snapshot {snapshot['state']}"
            if snapshot["rows"] is not None:
                detail += f", {snapshot['rows']} rows"
            detail += f", generation {snapshot['generation']}"
        else:
            detail = status["reason"]
        return (
            "\n=== match strategy ===\n"
            + f"structural match: {status['strategy']} ({detail})"
        )

    def explain(self, text: str, *, verbose: bool = False) -> Explanation:
        """The candidate plans for a query, *without* executing it.

        Returns an :class:`Explanation`: usable as plain text, with
        ``to_dict()`` for programmatic consumers.  ``verbose=True``
        annotates every operator with the optimizer's row/cost
        estimates and appends the plan comparison.  All options are
        keyword-only — the pre-redesign positional form was removed in
        the columnar API unification.
        """
        expr = self.parse(text)
        naive, grouped = self.plans_for(text)
        strategy = self._match_strategy_status()
        payload: dict = {
            "query": text,
            "plans": {
                "naive": naive.to_dict() if naive is not None else None,
                "groupby": grouped.to_dict(),
            },
            "match_strategy": strategy,
        }
        cost_text, payload["cost_model"] = self._cost_model_section(text, expr)
        naive_section = (
            "(3-level nested FLWR: no single naive join plan; join-graph\n"
            " isolation collapses the nesting into the grouping plan below)"
            if naive is None
            else None
        )
        if not verbose:
            text_out = (
                "=== naive (join) plan ===\n"
                + (naive_section if naive is None else naive.explain())
                + "\n=== rewritten (GROUPBY) plan ===\n"
                + grouped.explain()
                + self._render_match_strategy(strategy)
                + cost_text
            )
            return Explanation(text_out, payload)
        from .estimate import CardinalityEstimator

        estimator = CardinalityEstimator(self.store, self.indexes)
        optimizer_section = ""
        if naive is not None:
            choice = estimator.compare_plans(naive, grouped)
            payload["optimizer"] = {
                "naive_cost": choice.naive_cost,
                "groupby_cost": choice.groupby_cost,
                "winner": choice.winner,
                "advantage": choice.advantage,
            }
            optimizer_section = "\n=== optimizer ===\n" + (
                f"estimated cost: naive ~{choice.naive_cost:.0f} lookups, "
                f"groupby ~{choice.groupby_cost:.0f} lookups -> "
                f"{choice.winner} (advantage {choice.advantage:.1f}x)"
            )
        text_out = (
            "=== naive (join) plan ===\n"
            + (naive_section if naive is None else estimator.annotate(naive))
            + "\n=== rewritten (GROUPBY) plan ===\n"
            + estimator.annotate(grouped)
            + optimizer_section
            + self._render_match_strategy(strategy)
            + cost_text
        )
        return Explanation(text_out, payload)

    def _cost_model_section(self, text: str, expr: Expr) -> tuple[str, dict]:
        """EXPLAIN's ``=== cost model ===`` section: the optimizer's
        chosen plan, the rejected alternatives, and the per-operator
        estimates (with actuals once the query has run)."""
        header = "\n=== cost model ===\n"
        if not (self.use_indexes and self.optimizer_enabled):
            reason = "use_indexes=False" if not self.use_indexes else "optimizer disabled"
            return (
                header + f"optimizer off ({reason}); heuristic plan choice",
                {"enabled": False, "reason": reason},
            )
        try:
            decision, _ = Optimizer(self.store, self.indexes).decide(
                expr,
                self.root_tag(self._target_document(expr)),
                columnar_available=self.columnar_enabled,
                grouping_forced=(
                    self.grouping_strategy if self._grouping_forced else None
                ),
                corrections=self._feedback.corrections(text),
            )
        except TranslationError as exc:
            return (
                header
                + f"query outside the costed grouping family ({exc});\n"
                + "direct interpreter, uncosted",
                {"enabled": True, "costed": False, "reason": str(exc)},
            )
        actuals = self._feedback.actuals(text)
        chosen = decision.chosen
        lines = [
            f"statistics version: {decision.stats_version}",
            f"chosen: {chosen.name} (mode {chosen.mode}, join {chosen.join_strategy}) "
            f"cost ~{chosen.cost:.0f}"
            + (" [re-costed from feedback]" if decision.recosted else ""),
        ]
        for rejected in decision.rejected:
            factor = rejected.cost / max(chosen.cost, 1e-9)
            lines.append(
                f"rejected: {rejected.name} (mode {rejected.mode}) "
                f"cost ~{rejected.cost:.0f} ({factor:.1f}x worse)"
            )
        if decision.match_candidates:
            alts = ", ".join(
                f"{name} ~{cost:.0f}" for name, cost in decision.match_candidates
            )
            lines.append(f"match strategy: {decision.match_strategy} ({alts})")
        if decision.grouping_candidates:
            alts = ", ".join(
                f"{name} ~{cost:.0f}" for name, cost in decision.grouping_candidates
            )
            lines.append(f"grouping strategy: {decision.grouping_strategy} ({alts})")
        if decision.forecasts:
            lines.append("operators (estimated rows -> actual):")
            for forecast in decision.forecasts:
                actual = actuals.get((forecast.op, forecast.detail))
                actual_text = "-" if actual is None else f"{actual:.0f}"
                lines.append(
                    f"  {forecast.op} {forecast.detail}: "
                    f"est {forecast.est_rows:.0f} -> {actual_text}"
                )
        cost_payload = {
            "enabled": True,
            "costed": True,
            "kind": decision.kind,
            "stats_version": decision.stats_version,
            "recosted": decision.recosted,
            "chosen": {
                "name": chosen.name,
                "mode": chosen.mode,
                "join_strategy": chosen.join_strategy,
                "cost": chosen.cost,
                "rows": chosen.rows,
            },
            "candidates": [
                {
                    "name": c.name,
                    "mode": c.mode,
                    "join_strategy": c.join_strategy,
                    "cost": c.cost,
                    "rows": c.rows,
                }
                for c in decision.candidates
            ],
            "match_strategy": decision.match_strategy,
            "match_candidates": list(decision.match_candidates),
            "grouping_strategy": decision.grouping_strategy,
            "grouping_candidates": list(decision.grouping_candidates),
            "forecasts": [
                {
                    "op": f.op,
                    "detail": f.detail,
                    "est_rows": f.est_rows,
                    "est_cost": f.est_cost,
                    "actual": actuals.get((f.op, f.detail)),
                }
                for f in decision.forecasts
            ],
        }
        return header + "\n".join(lines), cost_payload

    def prepare(self, text: str, *, plan: PlanMode | str | None = None) -> PreparedQuery:
        """Parse and plan ``text`` without executing it.

        ``AUTO`` is resolved here: the GROUPBY rewrite when the query is
        translatable, the direct interpreter otherwise.  The returned
        :class:`PreparedQuery` can be executed any number of times with
        :meth:`execute` — the service layer's plan cache is built on
        exactly this split.
        """
        mode = self._coerce_plan_mode(plan)
        expr = self.parse(text)
        join_strategy = "nested-loop"
        built: PlanNode | None = None
        decision: PlanDecision | None = None
        if mode is PlanMode.AUTO:
            if self.use_indexes and self.optimizer_enabled:
                try:
                    decision, built = Optimizer(self.store, self.indexes).decide(
                        expr,
                        self.root_tag(self._target_document(expr)),
                        columnar_available=self.columnar_enabled,
                        grouping_forced=(
                            self.grouping_strategy if self._grouping_forced else None
                        ),
                        corrections=self._feedback.corrections(text),
                    )
                    resolved = PlanMode(decision.chosen.mode)
                    join_strategy = decision.chosen.join_strategy
                except TranslationError:
                    resolved = PlanMode.DIRECT
            else:
                try:
                    built = self._build_plan(expr, rewritten=True)
                    resolved = PlanMode.GROUPBY
                except TranslationError:
                    resolved = PlanMode.DIRECT
        elif mode is PlanMode.DIRECT:
            resolved = PlanMode.DIRECT
        else:
            rewritten = mode in (PlanMode.GROUPBY, PlanMode.LOGICAL_GROUPBY)
            built = self._build_plan(expr, rewritten=rewritten)
            resolved = mode
            if mode is PlanMode.NAIVE_HASH:
                join_strategy = "value-hash"
        return PreparedQuery(
            text=text,
            requested=mode,
            resolved=resolved,
            expr=expr,
            plan=built,
            join_strategy=join_strategy,
            generation=self.store.generation,
            decision=decision,
            stats_version=(
                decision.stats_version
                if decision is not None
                else (self.statistics_version if self.use_indexes else 0)
            ),
        )

    def execute(
        self,
        prepared: PreparedQuery,
        *,
        analyze: bool = False,
        trace: QueryTrace | None = None,
        reset_statistics: bool = True,
        timeout: float | None = None,
    ) -> QueryResult:
        """Execute a :class:`PreparedQuery` (see :meth:`query` for the
        option semantics; ``timeout`` installs a per-query deadline)."""
        self.indexes.ensure_built()
        if reset_statistics:
            self.store.reset_stats()

        collectors: list = list(active_traces())
        if trace is not None:
            collectors.append(trace)
        profiling = analyze or bool(collectors)

        if timeout is not None:
            with deadline_scope(Deadline(timeout)):
                result = self._execute_prepared(prepared, profiling)
        else:
            result = self._execute_prepared(prepared, profiling)

        if collectors and result.profile is not None:
            event = TraceEvent(
                query=prepared.text,
                plan_mode=result.plan_mode,
                elapsed_seconds=result.elapsed_seconds,
                profile=result.profile,
                counters=result.profile.totals,
            )
            for collector in collectors:
                if isinstance(collector, QueryTrace):
                    collector.record(event)
                else:
                    collector(event)
        return result

    def query(
        self,
        text: str,
        *,
        plan: PlanMode | str | None = None,
        analyze: bool = False,
        trace: QueryTrace | None = None,
        reset_statistics: bool = True,
        timeout: float | None = None,
    ) -> QueryResult:
        """Parse, plan, and execute ``text``.

        Options are keyword-only:

        * ``plan`` — a :class:`PlanMode` (or its string value);
        * ``analyze`` — attach an
          :class:`~repro.observability.ExecutionProfile` to the result
          (EXPLAIN ANALYZE: the executed plan annotated with actual
          per-operator times, cardinalities, and counter deltas);
        * ``trace`` — a :class:`~repro.observability.QueryTrace` (or
          any ``event -> None`` callable) that receives this
          execution's :class:`~repro.observability.TraceEvent` in
          addition to the globally active traces;
        * ``reset_statistics`` — zero the store counters first (the
          default), so ``result.statistics`` is this query's own work;
        * ``timeout`` — a per-query deadline in seconds: execution is
          cancelled at the next cooperative checkpoint past it, raising
          :class:`~repro.errors.QueryTimeoutError` with all resources
          (buffer pins included) released.

        The pre-redesign positional forms (``query(text, "naive")``)
        were removed in the columnar API unification — options are
        keyword-only and passing them positionally raises
        :class:`TypeError`.
        """
        prepared = self.prepare(text, plan=plan)
        return self.execute(
            prepared,
            analyze=analyze,
            trace=trace,
            reset_statistics=reset_statistics,
            timeout=timeout,
        )

    def _execute_prepared(self, prepared: PreparedQuery, profiling: bool) -> QueryResult:
        mode = prepared.resolved
        if mode is PlanMode.DIRECT:
            return self._run_direct(prepared.text, prepared.expr, profiling=profiling)
        if mode in (PlanMode.LOGICAL_NAIVE, PlanMode.LOGICAL_GROUPBY):
            return self._run_logical(
                prepared.text,
                prepared.expr,
                rewritten=mode is PlanMode.LOGICAL_GROUPBY,
                mode_name=mode.value,
                profiling=profiling,
                plan=prepared.plan,
            )
        try:
            return self._run_physical(
                prepared.text,
                prepared.expr,
                rewritten=mode is PlanMode.GROUPBY,
                mode_name=mode.value,
                join_strategy=prepared.join_strategy,
                profiling=profiling,
                plan=prepared.plan,
                decision=prepared.decision,
            )
        except TranslationError:
            # AUTO's runtime fallback: a plan that translated but hits an
            # unsupported shape during execution still degrades to the
            # direct interpreter, exactly as before the prepare/execute
            # split.
            if prepared.requested is PlanMode.AUTO:
                return self._run_direct(prepared.text, prepared.expr, profiling=profiling)
            raise

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_plan_mode(plan: PlanMode | str | None) -> PlanMode:
        if plan is None:
            return PlanMode.AUTO
        try:
            return PlanMode(plan)
        except ValueError:
            raise DatabaseError(
                f"unknown plan mode {plan!r}; pick one of {PLAN_MODES}"
            ) from None

    def _target_document(self, expr: Expr) -> str:
        from .ast import DocumentCall

        def walk(node):
            if isinstance(node, DocumentCall):
                yield node.name
            for value in getattr(node, "__dict__", {}).values():
                yield from _walk_value(value)
            if hasattr(node, "__dataclass_fields__"):
                for name in node.__dataclass_fields__:
                    yield from _walk_value(getattr(node, name))

        def _walk_value(value):
            if isinstance(value, tuple):
                for item in value:
                    yield from _walk_value(item)
            elif hasattr(value, "__dataclass_fields__"):
                yield from walk(value)

        names = set(walk(expr))
        if len(names) != 1:
            raise TranslationError(
                f"query must target exactly one document (found {sorted(names)})"
            )
        return names.pop()

    def _io_stats(self, statistics: dict[str, int]) -> dict[str, int]:
        io = {key: statistics.get(key, 0) for key in _IO_KEYS}
        io["pages_touched"] = io["hits"] + io["misses"]
        return io

    def _finish(
        self,
        text: str,
        collection: Collection,
        mode_name: str,
        elapsed: float,
        plan: PlanNode | None,
        profiler,
        before: CounterSnapshot | None,
    ) -> QueryResult:
        statistics = self.store.statistics()
        profile: ExecutionProfile | None = None
        if profiler is not None and profiler.roots:
            totals = snapshot_counters(self.store, self.indexes) - before
            profile = ExecutionProfile(
                query=text,
                plan_mode=mode_name,
                elapsed_seconds=elapsed,
                root=profiler.root(),
                totals=totals,
            )
        return QueryResult(
            collection,
            mode_name,
            elapsed,
            statistics,
            plan,
            profile,
            self._io_stats(statistics),
        )

    def _run_direct(self, text: str, expr: Expr, profiling: bool = False) -> QueryResult:
        interpreter = Interpreter(self.store, self.indexes)
        profiler = interpreter.enable_profiling() if profiling else None
        before = snapshot_counters(self.store, self.indexes) if profiling else None
        started = time.perf_counter()
        collection = interpreter.run(expr)
        elapsed = time.perf_counter() - started
        return self._finish(text, collection, "direct", elapsed, None, profiler, before)

    def _build_plan(self, expr: Expr, rewritten: bool) -> PlanNode:
        doc = self._target_document(expr)
        root_tag = self.root_tag(doc)
        try:
            _, naive = translate(expr, root_tag)
        except TranslationError:
            if rewritten:
                # Join-graph isolation: a 3-level nested FLWR has no
                # naive join plan, but collapses into one grouping plan.
                return collapse_nested(recognize_nested(expr), root_tag)
            raise
        return rewrite(naive) if rewritten else naive

    def _run_physical(
        self,
        text: str,
        expr: Expr,
        rewritten: bool,
        mode_name: str,
        join_strategy: str = "nested-loop",
        profiling: bool = False,
        plan: PlanNode | None = None,
        decision: PlanDecision | None = None,
    ) -> QueryResult:
        # Snapshot before any plan building: profile totals then match
        # ``statistics`` under a fresh reset.  A prebuilt ``plan`` (the
        # prepare/execute split, the service's plan cache) skips the
        # build entirely.
        before = snapshot_counters(self.store, self.indexes) if profiling else None
        if plan is None:
            plan = self._build_plan(expr, rewritten)
        grouping = self.grouping_strategy
        columnar = self.columnar_enabled
        if decision is not None:
            # Apply the cost model's choices: grouping strategy (unless
            # the caller forced one) and match strategy.
            if not self._grouping_forced and decision.grouping_strategy:
                grouping = decision.grouping_strategy
            if decision.match_strategy == "object-walk":
                columnar = False
        executor = PhysicalExecutor(
            self.store,
            self.indexes,
            grouping_strategy=grouping,
            use_indexes=self.use_indexes,
            join_strategy=join_strategy,
            columnar=columnar,
        )
        if decision is not None and decision.forecasts:
            # Lightweight per-operator cardinality log (cheaper than the
            # full profiler) feeding the estimate-vs-actual loop.
            executor.card_log = []
        profiler = executor.enable_profiling() if profiling else None
        started = time.perf_counter()
        collection = executor.execute(plan)
        elapsed = time.perf_counter() - started
        if executor.card_log:
            actuals = {
                (op, detail): float(rows) for op, detail, rows in executor.card_log
            }
            self._feedback.observe(text, decision.forecasts, actuals)
        return self._finish(text, collection, mode_name, elapsed, plan, profiler, before)

    def _run_logical(
        self,
        text: str,
        expr: Expr,
        rewritten: bool,
        mode_name: str,
        profiling: bool = False,
        plan: PlanNode | None = None,
    ) -> QueryResult:
        before = snapshot_counters(self.store, self.indexes) if profiling else None
        if plan is None:
            plan = self._build_plan(expr, rewritten)
        executor = LogicalExecutor(self.store, self.indexes)
        profiler = executor.enable_profiling() if profiling else None
        started = time.perf_counter()
        collection = executor.execute(plan)
        elapsed = time.perf_counter() - started
        return self._finish(text, collection, mode_name, elapsed, plan, profiler, before)

    # ------------------------------------------------------------------
    # Optimizer feedback
    # ------------------------------------------------------------------
    def consume_feedback_flag(self, text: str) -> bool:
        """True (once) when the last execution of ``text`` diverged from
        its cardinality forecast beyond the feedback ratio — the signal
        for plan caches to drop their entry so the next preparation
        re-costs with the observed cardinalities."""
        return self._feedback.consume_flag(text)

    def feedback_corrections(self, text: str) -> dict | None:
        """The stored per-operator cardinality corrections for ``text``
        (``None`` when its estimates have never diverged)."""
        return self._feedback.corrections(text)

    def feedback_actuals(self, text: str) -> dict:
        """The per-operator cardinalities observed at the last costed
        execution of ``text``."""
        return self._feedback.actuals(text)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
