"""The Database facade — TIMBER's architecture in one object (Fig. 12).

Wraps the storage manager, index manager, query parser/translator/
rewriter, and the three evaluators behind one API:

>>> db = Database()                         # in-memory; pass a path to persist
>>> db.load_text("<doc_root>...</doc_root>", name="bib.xml")
>>> result = db.query(QUERY_TEXT)           # auto: rewrite to GROUPBY if possible
>>> result.collection.sketch()

``plan`` selects the engine:

* ``"auto"`` — translate + rewrite to the GROUPBY physical plan; fall
  back to the direct interpreter when the query is outside the
  translatable family;
* ``"direct"`` — the paper's baseline: direct execution as written;
* ``"naive"`` — the naive join plan, executed physically (nested loops);
* ``"groupby"`` — the rewritten plan, executed physically;
* ``"logical-naive"`` / ``"logical-groupby"`` — the same two plans run
  with the in-memory reference operators (semantics oracle).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import DatabaseError, TranslationError
from ..indexing.manager import IndexManager
from ..storage.buffer import DEFAULT_POOL_FRAMES
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection
from .ast import Expr
from .interpreter import Interpreter
from .logical_exec import LogicalExecutor
from .parser import parse_query
from .physical import PhysicalExecutor
from .plan import PlanNode
from .rewrite import rewrite
from .translate import translate

PLAN_MODES = (
    "auto",
    "direct",
    "naive",
    "naive-hash",
    "groupby",
    "logical-naive",
    "logical-groupby",
)


@dataclass
class QueryResult:
    """Execution outcome: the result collection plus run metadata."""

    collection: Collection
    plan_mode: str
    elapsed_seconds: float
    statistics: dict[str, int] = field(default_factory=dict)
    plan: PlanNode | None = None

    def __len__(self) -> int:
        return len(self.collection)

    def to_xml(self, indent: str | None = "  ") -> str:
        """The result collection rendered as XML text, one document
        fragment per tree."""
        from ..xmlmodel.serialize import serialize

        parts = [serialize(tree.root, indent=indent) for tree in self.collection]
        joiner = "" if indent else "\n"
        return joiner.join(parts)


class Database:
    """A native XML database instance."""

    def __init__(
        self,
        directory: str | None = None,
        pool_frames: int = DEFAULT_POOL_FRAMES,
        grouping_strategy: str = "sort",
        use_indexes: bool = True,
    ):
        self.store = NodeStore(directory, pool_frames=pool_frames)
        self.indexes = IndexManager(self.store)
        self.grouping_strategy = grouping_strategy
        self.use_indexes = use_indexes
        if self.store.documents():
            # Reopen path: persisted indexes when fresh, else rebuild.
            if directory is None or not self.indexes.try_load(directory):
                self.indexes.build()
                if directory is not None:
                    self.indexes.save(directory)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_text(self, text: str, name: str) -> None:
        """Parse and store an XML document under ``name``; reindex."""
        self.store.load_text(text, name)
        self._reindex()

    def load_tree(self, root: XMLNode, name: str) -> None:
        self.store.load_tree(root, name)
        self._reindex()

    def load_file(self, path: str, name: str | None = None) -> None:
        self.store.load_file(path, name)
        self._reindex()

    def drop_document(self, name: str) -> None:
        """Drop a document and rebuild the indexes over the rest."""
        self.store.drop_document(name)
        self._reindex()

    def compact(self) -> None:
        """Reclaim space left by dropped documents (store rebuild)."""
        self.store = self.store.compact()
        self.indexes = IndexManager(self.store)
        self._reindex()

    def _reindex(self) -> None:
        self.indexes.build()
        if self.store.directory is not None:
            self.indexes.save(self.store.directory)

    def documents(self) -> list[str]:
        return [info.name for info in self.store.documents()]

    def info(self) -> dict[str, object]:
        """Summary of the database: documents, sizes, index statistics."""
        self.indexes.ensure_built()
        symbols = self.store.meta.symbols
        tag_counts = {
            symbols.name(sym): self.indexes.tag_index.count(sym)
            for sym in self.indexes.tag_index.tags()
        }
        return {
            "documents": [
                {"name": info.name, "nodes": info.n_nodes}
                for info in self.store.documents()
            ],
            "total_nodes": self.store.n_nodes(),
            "pages": self.store.disk.n_pages,
            "buffer_frames": self.store.pool.capacity,
            "tags": tag_counts,
            "value_index_keys": self.indexes.value_index.n_keys(),
        }

    def root_tag(self, doc: str) -> str:
        """Catalog lookup: the tag of the document's root element."""
        info = self.store.document(doc)
        return self.store.tag(info.root_nid)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def parse(self, text: str) -> Expr:
        return parse_query(text)

    def plans_for(self, text: str) -> tuple[PlanNode, PlanNode]:
        """The naive plan and its GROUPBY rewrite for a query text."""
        expr = self.parse(text)
        doc = self._target_document(expr)
        _, naive = translate(expr, self.root_tag(doc))
        return naive, rewrite(naive)

    def explain(self, text: str, verbose: bool = False) -> str:
        """Readable naive + rewritten plans for a query.

        ``verbose=True`` annotates every operator with the optimizer's
        row/cost estimates and appends the plan comparison.
        """
        naive, grouped = self.plans_for(text)
        if not verbose:
            return (
                "=== naive (join) plan ===\n"
                + naive.explain()
                + "\n=== rewritten (GROUPBY) plan ===\n"
                + grouped.explain()
            )
        from .estimate import CardinalityEstimator

        estimator = CardinalityEstimator(self.store, self.indexes)
        choice = estimator.compare_plans(naive, grouped)
        return (
            "=== naive (join) plan ===\n"
            + estimator.annotate(naive)
            + "\n=== rewritten (GROUPBY) plan ===\n"
            + estimator.annotate(grouped)
            + "\n=== optimizer ===\n"
            + (
                f"estimated cost: naive ~{choice.naive_cost:.0f} lookups, "
                f"groupby ~{choice.groupby_cost:.0f} lookups -> "
                f"{choice.winner} (advantage {choice.advantage:.1f}x)"
            )
        )

    def query(self, text: str, plan: str = "auto", reset_statistics: bool = True) -> QueryResult:
        """Parse, plan, and execute ``text``."""
        if plan not in PLAN_MODES:
            raise DatabaseError(f"unknown plan mode {plan!r}; pick one of {PLAN_MODES}")
        expr = self.parse(text)
        self.indexes.ensure_built()
        if reset_statistics:
            self.store.reset_statistics()

        if plan == "auto":
            try:
                return self._run_physical(expr, rewritten=True, mode_name="groupby")
            except TranslationError:
                return self._run_direct(expr)
        if plan == "direct":
            return self._run_direct(expr)
        if plan == "naive":
            return self._run_physical(expr, rewritten=False, mode_name="naive")
        if plan == "naive-hash":
            return self._run_physical(
                expr, rewritten=False, mode_name="naive-hash", join_strategy="value-hash"
            )
        if plan == "groupby":
            return self._run_physical(expr, rewritten=True, mode_name="groupby")
        if plan == "logical-naive":
            return self._run_logical(expr, rewritten=False, mode_name="logical-naive")
        return self._run_logical(expr, rewritten=True, mode_name="logical-groupby")

    # ------------------------------------------------------------------
    def _target_document(self, expr: Expr) -> str:
        from .ast import DocumentCall

        def walk(node):
            if isinstance(node, DocumentCall):
                yield node.name
            for value in getattr(node, "__dict__", {}).values():
                yield from _walk_value(value)
            if hasattr(node, "__dataclass_fields__"):
                for name in node.__dataclass_fields__:
                    yield from _walk_value(getattr(node, name))

        def _walk_value(value):
            if isinstance(value, tuple):
                for item in value:
                    yield from _walk_value(item)
            elif hasattr(value, "__dataclass_fields__"):
                yield from walk(value)

        names = set(walk(expr))
        if len(names) != 1:
            raise TranslationError(
                f"query must target exactly one document (found {sorted(names)})"
            )
        return names.pop()

    def _run_direct(self, expr: Expr) -> QueryResult:
        interpreter = Interpreter(self.store, self.indexes)
        started = time.perf_counter()
        collection = interpreter.run(expr)
        elapsed = time.perf_counter() - started
        return QueryResult(collection, "direct", elapsed, self.store.statistics())

    def _build_plan(self, expr: Expr, rewritten: bool) -> PlanNode:
        doc = self._target_document(expr)
        _, naive = translate(expr, self.root_tag(doc))
        return rewrite(naive) if rewritten else naive

    def _run_physical(
        self,
        expr: Expr,
        rewritten: bool,
        mode_name: str,
        join_strategy: str = "nested-loop",
    ) -> QueryResult:
        plan = self._build_plan(expr, rewritten)
        executor = PhysicalExecutor(
            self.store,
            self.indexes,
            grouping_strategy=self.grouping_strategy,
            use_indexes=self.use_indexes,
            join_strategy=join_strategy,
        )
        started = time.perf_counter()
        collection = executor.execute(plan)
        elapsed = time.perf_counter() - started
        return QueryResult(collection, mode_name, elapsed, self.store.statistics(), plan)

    def _run_logical(self, expr: Expr, rewritten: bool, mode_name: str) -> QueryResult:
        plan = self._build_plan(expr, rewritten)
        executor = LogicalExecutor(self.store, self.indexes)
        started = time.perf_counter()
        collection = executor.execute(plan)
        elapsed = time.perf_counter() - started
        return QueryResult(collection, mode_name, elapsed, self.store.statistics(), plan)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
