"""Cardinality estimation and plan costing — the Query Optimizer box.

TIMBER's architecture (Fig. 12) routes plans through a Query Optimizer;
the paper cites Wu/Patel/Jagadish, "Estimating Answer Sizes for XML
Queries" (EDBT 2002) for the underlying estimation problem.  This
module implements a deliberately simple instance of that idea on top of
the index statistics:

* **pattern cardinality** — the expected number of witnesses of a
  pattern tree, from per-tag node counts under a containment-
  completeness assumption: every node with the child's tag sits below
  some node with the parent's tag (exact for DBLP-shaped data, an
  upper-bound estimate otherwise);
* **distinct counts** — from the value index's key counts;
* **plan costing** — expected node-lookup work per operator, which is
  the unit the experiments actually measure.

The optimizer's conclusion for grouping queries is always the rewrite —
the naive plan's join term strictly dominates — but the estimates make
that decision inspectable (`Database.explain(verbose=True)`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import TranslationError
from ..indexing.manager import IndexManager
from ..pattern.pattern import PatternTree
from ..storage.store import NodeStore
from .plan import PlanNode

# One in-memory sort comparison costs a small fraction of a record
# lookup (no page access, no decode).  The weight folds comparison work
# into the lookup unit the rest of the model uses.
SORT_COMPARISON_WEIGHT = 0.05


@dataclass
class PlanEstimate:
    """Estimated output size and cumulative cost of one plan."""

    rows: float
    cost: float
    per_node: list[tuple[PlanNode, float, float]] = field(default_factory=list)
    # (node, estimated rows, estimated cost of this operator)


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's comparison of the two candidate plans."""

    naive_cost: float
    groupby_cost: float

    @property
    def winner(self) -> str:
        return "groupby" if self.groupby_cost <= self.naive_cost else "naive"

    @property
    def advantage(self) -> float:
        if self.groupby_cost <= 0:
            return math.inf
        return self.naive_cost / self.groupby_cost


class CardinalityEstimator:
    """Size and cost estimates from store + index statistics."""

    def __init__(self, store: NodeStore, indexes: IndexManager):
        self.store = store
        self.indexes = indexes
        indexes.ensure_built()
        self._distinct_cache: dict[str, int] = {}
        # Load-time statistics: per-tag counts, distincts, and subtree
        # sizes collected (and persisted) by the index manager — the
        # estimator reads them without touching postings or counters.
        self._stats = indexes.ensure_statistics()

    def _tag_stats(self, tag: str):
        sym = self.store.meta.symbols.lookup(tag)
        if sym is None:
            return None
        return self._stats.for_tag(sym)

    # ------------------------------------------------------------------
    # Base statistics
    # ------------------------------------------------------------------
    @property
    def statistics_version(self) -> int:
        """The statistics version the estimates are derived from."""
        return self._stats.version

    def tag_count(self, tag: str | None) -> int:
        """Number of nodes with the tag (all nodes for an unconstrained
        pattern node)."""
        if tag is None:
            return self.store.n_nodes()
        stats = self._tag_stats(tag)
        return stats.count if stats is not None else 0

    def distinct_count(self, tag: str) -> int:
        """Number of distinct content values among nodes with the tag."""
        cached = self._distinct_cache.get(tag)
        if cached is None:
            stats = self._tag_stats(tag)
            cached = stats.distinct_values if stats is not None else 0
            self._distinct_cache[tag] = cached
        return cached

    def avg_subtree_size(self, tag: str | None) -> float:
        """Mean subtree node count of nodes with the tag, from the
        load-time statistics (no postings or data pages touched)."""
        if tag is None:
            return 1.0
        stats = self._tag_stats(tag)
        if stats is None:
            return 1.0
        return stats.avg_subtree_size

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def pattern_cardinality(self, pattern: PatternTree) -> float:
        """Expected number of witnesses.

        Model: the root contributes its tag count; each edge multiplies
        by the expected number of child-tag matches per parent-tag node,
        ``count(child) / count(parent)`` — exact when child-tag nodes
        appear only below parent-tag nodes and parents are uniform.
        Value predicates scale the estimate by a selectivity factor
        (uniformity assumption: equality selects ``1/distinct``).
        """
        root_tag = pattern.root.predicate.tag_constraint()
        estimate = float(self.tag_count(root_tag))
        estimate *= self.value_selectivity(pattern.root.predicate, root_tag)
        for parent, child, _axis in pattern.edges():
            parent_count = self.tag_count(parent.predicate.tag_constraint())
            child_tag = child.predicate.tag_constraint()
            child_count = self.tag_count(child_tag)
            if parent_count <= 0:
                return 0.0
            estimate *= child_count / parent_count
            estimate *= self.value_selectivity(child.predicate, child_tag)
        return estimate

    # Heuristic selectivities for non-equality value conditions, in the
    # System-R tradition.
    COMPARE_SELECTIVITY = 1 / 3
    WILDCARD_SELECTIVITY = 1 / 4
    ATTRIBUTE_SELECTIVITY = 1 / 2

    def value_selectivity(self, predicate, tag: str | None) -> float:
        """Fraction of tag-matching nodes a value predicate keeps."""
        from ..pattern.predicates import (
            AttributeEquals,
            Conjunction,
            ContentCompare,
            ContentEquals,
            ContentWildcard,
        )

        if isinstance(predicate, Conjunction):
            factor = 1.0
            for part in predicate.parts:
                factor *= self.value_selectivity(part, tag)
            return factor
        if isinstance(predicate, ContentEquals):
            distinct = self.distinct_count(tag) if tag else 0
            return 1.0 / distinct if distinct else 1.0
        if isinstance(predicate, ContentWildcard):
            if predicate.content_equality() is not None:
                distinct = self.distinct_count(tag) if tag else 0
                return 1.0 / distinct if distinct else 1.0
            return self.WILDCARD_SELECTIVITY
        if isinstance(predicate, ContentCompare):
            return self.COMPARE_SELECTIVITY
        if isinstance(predicate, AttributeEquals):
            return self.ATTRIBUTE_SELECTIVITY
        return 1.0

    def pattern_match_cost(self, pattern: PatternTree) -> float:
        """Structural-join matching work: candidates consumed per node."""
        return float(
            sum(self.tag_count(node.predicate.tag_constraint()) for node in pattern.nodes())
        )

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def estimate_plan(
        self,
        plan: PlanNode,
        join_strategy: str = "nested-loop",
        overrides: dict[tuple[str, str], float] | None = None,
    ) -> PlanEstimate:
        """Bottom-up row/cost estimation for the supported operator set.

        ``overrides`` maps ``(op, detail)`` to *observed* output rows —
        the feedback loop's corrections.  A corrected operator's row
        estimate is replaced by its actual, and the correction
        propagates into every downstream operator's cost.
        """
        per_node: list[tuple[PlanNode, float, float]] = []

        def visit(node: PlanNode) -> tuple[float, float]:
            child_estimates = [visit(child) for child in node.inputs]
            rows, cost = self._estimate_node(node, child_estimates, join_strategy)
            if overrides:
                detail = node.describe()[len(node.op) :].strip()
                corrected = overrides.get((node.op, detail))
                if corrected is not None:
                    rows = float(corrected)
            total_cost = cost + sum(child_cost for _, child_cost in child_estimates)
            per_node.append((node, rows, cost))
            return rows, total_cost

        rows, cost = visit(plan)
        per_node.reverse()  # preorder-ish for display
        return PlanEstimate(rows=rows, cost=cost, per_node=per_node)

    def _estimate_node(
        self,
        node: PlanNode,
        child_estimates: list[tuple[float, float]],
        join_strategy: str,
    ) -> tuple[float, float]:
        op = node.op
        if op == "scan":
            return 1.0, 0.0
        if op == "select":
            pattern = node.params["pattern"]
            return self.pattern_cardinality(pattern), self.pattern_match_cost(pattern)
        if op == "project":
            return child_estimates[0][0], 0.0
        if op == "dupelim":
            rows = child_estimates[0][0]
            label = node.params["label"]
            if label is None:
                return rows, rows
            pattern = node.params["pattern"]
            tag = pattern.node(label).predicate.tag_constraint()
            distinct = self.distinct_count(tag) if tag else rows
            return float(min(distinct, rows)), rows  # one value lookup per input
        if op == "left_outer_join":
            left_rows = child_estimates[0][0]
            right_rows = self.pattern_cardinality(node.params["right_pattern"])
            match_cost = self.pattern_match_cost(node.params["right_pattern"])
            if join_strategy == "nested-loop":
                join_cost = left_rows * right_rows
            else:
                join_cost = left_rows + right_rows
            return max(right_rows, left_rows), match_cost + join_cost
        if op == "groupby":
            pattern = node.params["pattern"]
            witnesses = child_estimates[0][0] * self._edge_fanout(pattern)
            basis_label = node.params["basis"][0].rstrip("*")
            basis_tag = pattern.node(basis_label).predicate.tag_constraint()
            groups = self.distinct_count(basis_tag) if basis_tag else witnesses
            sort_cost = (
                SORT_COMPARISON_WEIGHT
                * witnesses
                * max(1.0, math.log2(max(witnesses, 2.0)))
            )
            return float(min(groups, witnesses)), witnesses + sort_cost
        if op in ("stitch", "project_groups"):
            rows = child_estimates[0][0]
            spec = node.params["spec"]
            if hasattr(spec, "mode"):
                count_mode = spec.mode == "count"  # GroupOutputSpec
            else:
                count_mode = any(arg.kind == "count" for arg in spec.args)  # StitchSpec
            members = self._member_estimate(node)
            if count_mode:
                # Late materialization: only the group/basis nodes.
                return rows, rows
            # Values mode navigates each member's subtree to reach and
            # materialize the output path.
            member_tag = self._member_tag(node)
            return rows, rows + members * self.avg_subtree_size(member_tag)
        if op == "nested_groups":
            return self._estimate_nested_groups(node, child_estimates)
        if op == "rename_root":
            return child_estimates[0][0], 0.0
        raise TranslationError(f"estimator: unsupported op {op!r}")

    def _estimate_nested_groups(
        self, node: PlanNode, child_estimates: list[tuple[float, float]]
    ) -> tuple[float, float]:
        """Join-graph isolation assembly: outer x middle membership
        probes, one link navigation per middle representative, and the
        construction of every qualifying element."""
        spec = node.params["spec"]
        outer_rows = child_estimates[0][0]
        middle_rows = child_estimates[1][0]
        outer_tag = self._distinct_segment_tag(node.inputs[0])
        middle_tag = self._distinct_segment_tag(node.inputs[1])
        # One child-step navigation chain per middle representative.
        link_cost = middle_rows * (len(spec.link_path) + 1)
        # Membership probes (set lookups, comparison-weighted).
        probe_cost = outer_rows * middle_rows * SORT_COMPARISON_WEIGHT
        # Construction: every outer and (qualifying ~ all) middle
        # representative materializes its subtree; members add their
        # output-path subtrees (values) or value fetches (aggregates).
        construct = outer_rows * self.avg_subtree_size(outer_tag)
        construct += middle_rows * self.avg_subtree_size(middle_tag)
        member_tag = self._member_tag_from(node.inputs[2])
        members = self._members_from(node.inputs[2])
        if spec.mode == "values":
            construct += members * self.avg_subtree_size(member_tag)
        else:
            construct += members
        return outer_rows, link_cost + probe_cost + construct

    def _distinct_segment_tag(self, segment: PlanNode) -> str | None:
        """The grouping element's tag of a distinct-values segment."""
        for candidate in segment.walk():
            if candidate.op == "dupelim" and candidate.params.get("label"):
                pattern = candidate.params["pattern"]
                return pattern.node(candidate.params["label"]).predicate.tag_constraint()
        return None

    def _members_from(self, source: PlanNode) -> float:
        for candidate in source.walk():
            if candidate.op == "groupby":
                return self._groupby_witnesses(candidate)
        return 0.0

    def _member_tag_from(self, source: PlanNode) -> str | None:
        for candidate in source.walk():
            if candidate.op == "groupby":
                return candidate.params["pattern"].root.predicate.tag_constraint()
        return None

    def _member_estimate(self, node: PlanNode) -> float:
        """Expected total group members feeding a construction step."""
        source = node.inputs[0]
        for candidate in source.walk():
            if candidate.op == "groupby":
                return self._groupby_witnesses(candidate)
            if candidate.op == "left_outer_join":
                return self.pattern_cardinality(candidate.params["right_pattern"])
        return 0.0

    def _groupby_witnesses(self, groupby_node: PlanNode) -> float:
        pattern = groupby_node.params["pattern"]
        base = self.tag_count(pattern.root.predicate.tag_constraint())
        return base * self._edge_fanout(pattern)

    def _member_tag(self, node: PlanNode) -> str | None:
        """The grouped element's tag (whose subtree construction walks)."""
        source = node.inputs[0]
        for candidate in source.walk():
            if candidate.op == "groupby":
                return candidate.params["pattern"].root.predicate.tag_constraint()
            if candidate.op == "left_outer_join":
                from .translate import INNER_LABEL

                pattern = candidate.params["right_pattern"]
                if pattern.has_node(INNER_LABEL):
                    return pattern.node(INNER_LABEL).predicate.tag_constraint()
        return None

    def _edge_fanout(self, pattern: PatternTree) -> float:
        """Witnesses per pattern-root match (the chain's multiplicity)."""
        fanout = 1.0
        for parent, child, _axis in pattern.edges():
            parent_count = self.tag_count(parent.predicate.tag_constraint())
            child_count = self.tag_count(child.predicate.tag_constraint())
            if parent_count <= 0:
                return 0.0
            fanout *= child_count / parent_count
        return fanout

    # ------------------------------------------------------------------
    # The optimizer decision
    # ------------------------------------------------------------------
    def compare_plans(
        self, naive: PlanNode, grouped: PlanNode, join_strategy: str = "nested-loop"
    ) -> PlanChoice:
        return PlanChoice(
            naive_cost=self.estimate_plan(naive, join_strategy).cost,
            groupby_cost=self.estimate_plan(grouped, join_strategy).cost,
        )

    def annotate(self, plan: PlanNode, join_strategy: str = "nested-loop") -> str:
        """The plan's explain text with per-operator row/cost estimates."""
        estimate = self.estimate_plan(plan, join_strategy)
        by_id = {id(node): (rows, cost) for node, rows, cost in estimate.per_node}

        def render(node: PlanNode, depth: int) -> list[str]:
            rows, cost = by_id[id(node)]
            lines = [
                "  " * depth
                + f"{node.describe()}  [~{rows:.0f} rows, ~{cost:.0f} lookups]"
            ]
            for child in node.inputs:
                lines.extend(render(child, depth + 1))
            return lines

        return "\n".join(render(plan, 0))
