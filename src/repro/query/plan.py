"""Logical query plans over the TAX algebra.

A plan is a tree of :class:`PlanNode` — operator name plus parameters
plus input plans.  The naive parse (Sec. 4.1) produces join-based plans;
the rewrite (:mod:`repro.query.rewrite`) transforms them into
GROUPBY-based plans.  Two executors run plans: the logical executor
(:mod:`repro.query.logical_exec`) interprets them with the in-memory
TAX operators, and the physical executor (:mod:`repro.query.physical`)
runs them against the store with identifier-only processing.

Operator vocabulary
-------------------

========================  ====================================================
op                        params
========================  ====================================================
``scan``                  ``doc`` — the stored document (collection of one tree)
``select``                ``pattern``, ``sl`` (adornment labels)
``project``               ``pattern``, ``pl`` (projection list, ``$i``/``$i*``)
``dupelim``               ``pattern``, ``label`` (content key) or neither
``left_outer_join``       ``left_pattern``, ``right_pattern``, ``conditions``,
                          ``sl`` — Fig. 4.b's join-plan pattern, split by side
``groupby``               ``pattern``, ``basis``, ``ordering``
``aggregate``             ``pattern``, ``function``, ``source_label``,
                          ``new_tag``, ``update``
``project_groups``        ``spec`` (:class:`GroupOutputSpec`) — the final
                          projection of Fig. 5.d, fused with construction
``nested_groups``         ``spec`` (:class:`NestedGroupSpec`) — join-graph
                          isolation of a 3-level nested FLWR: inputs are the
                          outer distinct values, the middle distinct values,
                          and the grouped inner collection
``stitch``                ``spec`` (:class:`StitchSpec`) — the RETURN-clause
                          stitching (full-outer-join + rename of Sec. 4.1)
``rename_root``           ``tag``
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import TranslationError


@dataclass
class PlanNode:
    """One operator application in a logical plan."""

    op: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list["PlanNode"] = field(default_factory=list)

    # -- navigation ------------------------------------------------------
    @property
    def child(self) -> "PlanNode":
        if len(self.inputs) != 1:
            raise TranslationError(f"{self.op} does not have exactly one input")
        return self.inputs[0]

    def walk(self) -> Iterator["PlanNode"]:
        """Preorder traversal of the plan tree."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def find(self, op: str) -> list["PlanNode"]:
        return [node for node in self.walk() if node.op == op]

    def transform(self, fn: Callable[["PlanNode"], "PlanNode | None"]) -> "PlanNode":
        """Bottom-up rewrite: ``fn`` may return a replacement node."""
        new_inputs = [node.transform(fn) for node in self.inputs]
        candidate = PlanNode(self.op, dict(self.params), new_inputs)
        replacement = fn(candidate)
        return replacement if replacement is not None else candidate

    # -- display ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable structural rendering: operator, one-line detail, and
        inputs.  Parameters holding pattern objects are summarized into
        ``detail`` rather than exposed raw, so the dict is plain data."""
        detail = self.describe()[len(self.op) :].strip()
        return {
            "op": self.op,
            "detail": detail,
            "inputs": [node.to_dict() for node in self.inputs],
        }

    def describe(self) -> str:
        summary = _SUMMARIZERS.get(self.op)
        if summary is not None:
            return f"{self.op} {summary(self.params)}"
        return self.op

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        lines.extend(node.explain(indent + 1) for node in self.inputs)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PlanNode {self.op} inputs={len(self.inputs)}>"


@dataclass(frozen=True)
class ArgSpec:
    """One RETURN-clause argument in a stitch (naive plan).

    ``kind``:

    * ``outer`` — copy the outer bound node itself (``{$a}``);
    * ``members`` — per joined tree of the group, select/project a path
      inside the inner bound subtree (titles);
    * ``count`` — ``{count($t)}``: the number of output-path nodes
      reached across the group's joined trees;
    * ``aggregate`` — ``{sum($t)}`` etc.: ``function`` applied to the
      output-path node values across the group's joined trees.
    """

    kind: str
    member_path: tuple[str, ...] = ()
    count_tag: str | None = None
    function: str | None = None  # sum | min | max | avg (kind="aggregate")


@dataclass(frozen=True)
class StitchSpec:
    """How to assemble RETURN output per outer binding (naive plan).

    ``outer_label``/``inner_label`` name the join pattern's bound
    variables whose contents correlate left and right sides; ``args``
    are emitted in order into a ``return_tag`` element.
    """

    return_tag: str
    outer_label: str
    inner_label: str
    args: tuple[ArgSpec, ...]
    # Member ordering: (path from the inner element, direction) pairs.
    ordering: tuple[tuple[tuple[str, ...], str], ...] = ()


@dataclass(frozen=True)
class GroupOutputSpec:
    """The final projection over group trees (rewrite Phase 2, step 4).

    Produces one ``return_tag`` element per group: the grouping-basis
    node, then — depending on ``mode`` — the nodes on ``member_path``
    per member (``values``), the count of the reached nodes
    (``count``), or an aggregate of their values (``sum``/``min``/
    ``max``/``avg``).
    """

    return_tag: str
    member_path: tuple[str, ...] = ()
    mode: str = "values"  # values | count | sum | min | max | avg
    count_tag: str | None = None


@dataclass(frozen=True)
class NestedGroupSpec:
    """Assembly of a collapsed 3-level nested FLWR (join-graph isolation).

    One ``outer_tag`` element per outer distinct value; inside it, one
    ``middle_tag`` element per middle distinct value whose ``link_path``
    values (navigated from the middle representative) contain the outer
    value; inside *that*, the inner group's members per ``member_path``
    and ``mode`` — exactly the :class:`GroupOutputSpec` conventions.
    """

    outer_tag: str
    middle_tag: str
    link_path: tuple[str, ...]
    member_path: tuple[str, ...] = ()
    mode: str = "values"  # values | count | sum | min | max | avg


# ----------------------------------------------------------------------
# Constructors (thin, validated)
# ----------------------------------------------------------------------
def scan(doc: str) -> PlanNode:
    return PlanNode("scan", {"doc": doc})


def select(child: PlanNode, pattern, sl: set[str] | frozenset[str] = frozenset()) -> PlanNode:
    return PlanNode("select", {"pattern": pattern, "sl": frozenset(sl)}, [child])


def project(child: PlanNode, pattern, pl: list[str]) -> PlanNode:
    return PlanNode("project", {"pattern": pattern, "pl": list(pl)}, [child])


def dupelim(
    child: PlanNode, pattern=None, label: str | None = None, by_nids: bool = False
) -> PlanNode:
    return PlanNode(
        "dupelim", {"pattern": pattern, "label": label, "by_nids": by_nids}, [child]
    )


def left_outer_join(
    left: PlanNode,
    right: PlanNode,
    left_pattern,
    right_pattern,
    conditions: list[tuple[str, str]],
    sl: set[str] | frozenset[str] = frozenset(),
) -> PlanNode:
    return PlanNode(
        "left_outer_join",
        {
            "left_pattern": left_pattern,
            "right_pattern": right_pattern,
            "conditions": list(conditions),
            "sl": frozenset(sl),
        },
        [left, right],
    )


def groupby(
    child: PlanNode,
    pattern,
    basis: list[str],
    ordering: list[tuple[tuple[str, ...], str]],
) -> PlanNode:
    return PlanNode(
        "groupby",
        {"pattern": pattern, "basis": list(basis), "ordering": list(ordering)},
        [child],
    )


def aggregate(
    child: PlanNode, pattern, function: str, source_label: str, new_tag: str, update
) -> PlanNode:
    return PlanNode(
        "aggregate",
        {
            "pattern": pattern,
            "function": function,
            "source_label": source_label,
            "new_tag": new_tag,
            "update": update,
        },
        [child],
    )


def project_groups(child: PlanNode, spec: GroupOutputSpec) -> PlanNode:
    return PlanNode("project_groups", {"spec": spec}, [child])


def nested_groups(
    outer: PlanNode, middle: PlanNode, grouped: PlanNode, spec: NestedGroupSpec
) -> PlanNode:
    return PlanNode("nested_groups", {"spec": spec}, [outer, middle, grouped])


def stitch(child: PlanNode, spec: StitchSpec) -> PlanNode:
    return PlanNode("stitch", {"spec": spec}, [child])


def rename_root(child: PlanNode, tag: str) -> PlanNode:
    return PlanNode("rename_root", {"tag": tag}, [child])


# ----------------------------------------------------------------------
# Explain summaries
# ----------------------------------------------------------------------
def _fmt_pattern(pattern) -> str:
    return "/".join(pattern.labels()) if pattern is not None else "-"


_SUMMARIZERS: dict[str, Callable[[dict], str]] = {
    "scan": lambda p: p["doc"],
    "select": lambda p: f"P={_fmt_pattern(p['pattern'])} SL={sorted(p['sl'])}",
    "project": lambda p: f"P={_fmt_pattern(p['pattern'])} PL={p['pl']}",
    "dupelim": lambda p: f"on {p['label'] or 'whole tree'}",
    "left_outer_join": lambda p: (
        f"L={_fmt_pattern(p['left_pattern'])} R={_fmt_pattern(p['right_pattern'])} "
        f"on {p['conditions']}"
    ),
    "groupby": lambda p: f"basis={p['basis']} order={p['ordering']}",
    "aggregate": lambda p: f"{p['new_tag']}={p['function']}({p['source_label']})",
    "project_groups": lambda p: (
        f"-> <{p['spec'].return_tag}> mode={p['spec'].mode} "
        f"path={'/'.join(p['spec'].member_path) or '-'}"
    ),
    "nested_groups": lambda p: (
        f"-> <{p['spec'].outer_tag}>/<{p['spec'].middle_tag}> "
        f"link={'/'.join(p['spec'].link_path) or '-'} mode={p['spec'].mode} "
        f"path={'/'.join(p['spec'].member_path) or '-'}"
    ),
    "stitch": lambda p: (
        f"-> <{p['spec'].return_tag}> by {p['spec'].outer_label}~{p['spec'].inner_label}"
    ),
    "rename_root": lambda p: f"-> <{p['tag']}>",
}
