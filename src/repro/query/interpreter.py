"""Direct ("as written") evaluation of the XQuery subset — the baseline.

Sec. 6 compares the grouping plan against "a 'direct' execution of the
XQuery as written": use the tag index to identify nodes, look up data
values for duplicate elimination and the join, and evaluate nested FLWR
expressions by nested loops, one outer binding at a time.  This module
is that baseline, implemented over the same store/index substrate as
the algebraic engine so the two are cost-comparable.

Items flowing through evaluation are either stored-node ids (``int``),
constructed :class:`~repro.xmlmodel.node.XMLNode` trees, or atomic
strings.  Sequences are Python lists of items.
"""

from __future__ import annotations

from ..cancellation import checkpoint
from ..errors import TranslationError
from ..indexing.manager import IndexManager
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .ast import (
    AggregateCall,
    AndExpr,
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    Expr,
    FLWR,
    ForClause,
    LetClause,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    TextItem,
    VarRef,
)

Item = object  # int (nid) | str | XMLNode
Sequence = list


class Interpreter:
    """Tuple-at-a-time evaluator bound to one store + index manager."""

    def __init__(self, store: NodeStore, indexes: IndexManager):
        self.store = store
        self.indexes = indexes
        self.profiler = None

    def enable_profiling(self):
        """Record the whole evaluation as one ``interpret`` span.

        The direct evaluator has no operator tree to attribute work to —
        it *is* the paper's tuple-at-a-time baseline — so its profile is
        a single span carrying the query-wide counter deltas.
        """
        from ..observability import Profiler, snapshot_counters

        self.profiler = Profiler(
            lambda: snapshot_counters(self.store, self.indexes)
        )
        return self.profiler

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def evaluate(self, expr: Expr) -> Sequence:
        """Evaluate to a raw item sequence."""
        return self._eval(expr, {})

    def run(self, expr: Expr) -> Collection:
        """Evaluate and wrap constructed results as a collection."""
        if self.profiler is not None:
            with self.profiler.operator("interpret", "direct evaluation") as span:
                output = self._run_unprofiled(expr)
                span.output_rows = len(output)
            return output
        return self._run_unprofiled(expr)

    def _run_unprofiled(self, expr: Expr) -> Collection:
        output = Collection(name="direct")
        for item in self.evaluate(expr):
            output.append(DataTree(self._to_node(item)))
        return output

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, env: dict[str, Sequence]) -> Sequence:
        if isinstance(expr, StringLiteral):
            return [expr.value]
        if isinstance(expr, NumberLiteral):
            return [expr.text]
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise TranslationError(f"unbound variable ${expr.name}")
            return list(env[expr.name])
        if isinstance(expr, DocumentCall):
            info = self.store.document(expr.name)
            return [info.root_nid]
        if isinstance(expr, PathExpr):
            return self._eval_path(expr, env)
        if isinstance(expr, DistinctValues):
            return self._distinct(self._eval(expr.argument, env))
        if isinstance(expr, CountCall):
            return [str(len(self._eval(expr.argument, env)))]
        if isinstance(expr, AggregateCall):
            return self._aggregate(expr, env)
        if isinstance(expr, FLWR):
            return self._eval_flwr(expr, env)
        if isinstance(expr, ElementConstructor):
            return [self._construct(expr, env)]
        if isinstance(expr, (Comparison, AndExpr)):
            return ["true" if self._eval_boolean(expr, env) else "false"]
        raise TranslationError(f"cannot evaluate {type(expr).__name__}")

    # ------------------------------------------------------------------
    # FLWR
    # ------------------------------------------------------------------
    def _eval_flwr(self, expr: FLWR, env: dict[str, Sequence]) -> Sequence:
        results: Sequence = []

        def recurse(index: int, scope: dict[str, Sequence]) -> None:
            if index == len(expr.clauses):
                if expr.where is not None and not self._eval_boolean(expr.where, scope):
                    return
                results.extend(self._eval(expr.ret, scope))
                return
            clause = expr.clauses[index]
            if isinstance(clause, LetClause):
                bound = dict(scope)
                bound[clause.var] = self._eval(clause.source, scope)
                recurse(index + 1, bound)
                return
            assert isinstance(clause, ForClause)
            for item in self._eval(clause.source, scope):
                # Cancellation point per outer binding: nested FLWRs are
                # the direct baseline's O(n*m) hot loop.
                checkpoint()
                bound = dict(scope)
                bound[clause.var] = [item]
                recurse(index + 1, bound)

        recurse(0, dict(env))
        if expr.sortby:
            results = self._apply_sortby(results, expr.sortby)
        return results

    def _apply_sortby(self, items: Sequence, sortby) -> Sequence:
        """2001-era SORTBY: stable sort of the result sequence, rightmost
        key applied first so the leftmost is primary."""
        from ..core.base import numeric_or_text

        ordered = list(items)
        for key in reversed(sortby):
            ordered.sort(
                key=lambda item: numeric_or_text(self._sort_value(item, key.path)),
                reverse=key.direction == "DESCENDING",
            )
        return ordered

    def _sort_value(self, item: Item, path: tuple[str, ...]) -> str:
        if path == (".",):
            return self._atomize(item)
        if isinstance(item, int):
            frontier = [item]
            for name in path:
                frontier = [
                    child
                    for current in frontier
                    for child in self.store.children(current)
                    if self.store.tag(child) == name
                ]
            return self._atomize(frontier[0]) if frontier else ""
        if isinstance(item, XMLNode):
            nodes = [item]
            for name in path:
                nodes = [c for node in nodes for c in node.findall(name)]
            return self._atomize(nodes[0]) if nodes else ""
        return self._atomize(item)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _eval_path(self, expr: PathExpr, env: dict[str, Sequence]) -> Sequence:
        context = self._eval(expr.base, env)
        for step in expr.steps:
            if step.axis == "@":
                context = self._eval_attribute_step(context, step.name)
            else:
                context = self._eval_step(context, step, env)
        return context

    def _eval_attribute_step(self, context: Sequence, name: str) -> Sequence:
        """``/@name``: attribute string values of the context nodes."""
        out: Sequence = []
        for item in context:
            if isinstance(item, int):
                attributes = dict(self.store.record(item).attributes)
            elif isinstance(item, XMLNode):
                attributes = item.attributes
            else:
                raise TranslationError("attribute steps apply to nodes only")
            value = attributes.get(name)
            if value is not None:
                out.append(value)
        return out

    def _eval_step(self, context: Sequence, step: Step, env: dict[str, Sequence]) -> Sequence:
        out: Sequence = []
        seen: set[int] = set()
        for item in context:
            checkpoint()
            for nid in self._step_from(item, step):
                if nid in seen:
                    continue
                seen.add(nid)
                if step.predicate is None or self._check_predicate(nid, step, env):
                    out.append(nid)
        return out

    def _step_from(self, item: Item, step: Step) -> list[int]:
        if not isinstance(item, int):
            raise TranslationError("path steps apply to stored nodes only")
        if step.axis == "//":
            # Index-assisted: take the tag's posting list and keep labels
            # inside the context subtree (the direct plan's index use).
            record = self.store.record(item)
            if step.name == "*":
                return list(self.store.subtree_nids(item))[1:]
            labels = self.indexes.labels_for_tag(step.name)
            return [
                label.nid
                for label in labels
                if record.start < label.start and label.end < record.end
            ]
        children = self.store.children(item)
        if step.name == "*":
            return children
        return [nid for nid in children if self.store.tag(nid) == step.name]

    def _check_predicate(self, nid: int, step: Step, env: dict[str, Sequence]) -> bool:
        predicate = step.predicate
        assert predicate is not None
        # Navigate the relative path inside the brackets.
        frontier = [nid]
        for name in predicate.path:
            next_frontier: list[int] = []
            for current in frontier:
                next_frontier.extend(
                    child
                    for child in self.store.children(current)
                    if self.store.tag(child) == name
                )
            frontier = next_frontier
        right_values = [self._atomize(item) for item in self._eval(predicate.right, env)]
        left_values = [self._atomize(item) for item in frontier]
        return _existential(left_values, predicate.op, right_values)

    # ------------------------------------------------------------------
    # Booleans and atomization
    # ------------------------------------------------------------------
    def _eval_boolean(self, expr: Expr, env: dict[str, Sequence]) -> bool:
        if isinstance(expr, AndExpr):
            return all(self._eval_boolean(part, env) for part in expr.parts)
        if isinstance(expr, Comparison):
            left = [self._atomize(item) for item in self._eval(expr.left, env)]
            right = [self._atomize(item) for item in self._eval(expr.right, env)]
            return _existential(left, expr.op, right)
        raise TranslationError("WHERE supports comparisons and AND only")

    def _atomize(self, item: Item) -> str:
        if isinstance(item, str):
            return item
        if isinstance(item, int):
            content = self.store.content(item)
            if content is not None:
                return content
            # Fall back to the subtree string value (rare in our data).
            node = self.store.materialize(item, with_content=True)
            return "".join(n.content or "" for n in node.iter())
        if isinstance(item, XMLNode):
            return "".join(n.content or "" for n in item.iter())
        raise TranslationError(f"cannot atomize {type(item).__name__}")

    def _aggregate(self, expr: AggregateCall, env: dict[str, Sequence]) -> Sequence:
        """Numeric aggregates over the atomized argument sequence.

        Follows XQuery's empty-sequence behaviour: ``sum`` of nothing is
        0; ``min``/``max``/``avg`` of nothing are the empty sequence.
        """
        values = [self._atomize(item) for item in self._eval(expr.argument, env)]
        numbers: list[float] = []
        for value in values:
            try:
                numbers.append(float(value))
            except ValueError as exc:
                raise TranslationError(
                    f"{expr.function}(): non-numeric value {value!r}"
                ) from exc
        if not numbers:
            return ["0"] if expr.function == "sum" else []
        if expr.function == "sum":
            result = sum(numbers)
        elif expr.function == "min":
            result = min(numbers)
        elif expr.function == "max":
            result = max(numbers)
        else:
            result = sum(numbers) / len(numbers)
        if result == int(result):
            return [str(int(result))]
        return [repr(result)]

    def _distinct(self, items: Sequence) -> Sequence:
        seen: set[str] = set()
        out: Sequence = []
        for item in items:
            value = self._atomize(item)
            if value in seen:
                continue
            seen.add(value)
            out.append(item)
        return out

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _construct(self, expr: ElementConstructor, env: dict[str, Sequence]) -> XMLNode:
        node = XMLNode(expr.tag, attributes=dict(expr.attributes) or None)
        texts: list[str] = []
        for item in expr.items:
            if isinstance(item, TextItem):
                texts.append(item.text)
            elif isinstance(item, ElementConstructor):
                node.append_child(self._construct(item, env))
            elif isinstance(item, EmbeddedExpr):
                for value in self._eval(item.expr, env):
                    if isinstance(value, str):
                        texts.append(value)
                    else:
                        node.append_child(self._to_node(value))
            else:  # pragma: no cover - AST is closed
                raise TranslationError(f"bad constructor item {item!r}")
        if texts:
            node.content = " ".join(texts)
        return node

    def _to_node(self, item: Item) -> XMLNode:
        if isinstance(item, XMLNode):
            return item
        if isinstance(item, int):
            return self.store.materialize(item, with_content=True)
        return XMLNode("value", str(item))


def _existential(left: list[str], op: str, right: list[str]) -> bool:
    """XPath general comparison: true if any pair satisfies ``op``."""
    for a in left:
        for b in right:
            if _compare(a, op, b):
                return True
    return False


def _compare(a: str, op: str, b: str) -> bool:
    # Equality on untyped XML values is string equality ('10' != '10.0'),
    # matching the value-based joins of the algebraic plans.  Ordering
    # comparisons coerce to numbers when both sides parse, which is what
    # year/page predicates want.
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    try:
        left, right = float(a), float(b)  # type: ignore[assignment]
    except ValueError:
        left, right = a, b  # type: ignore[assignment]
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise TranslationError(f"unsupported comparison operator {op!r}")
