"""Label-only path navigation for the physical engine.

Given a set of starting node labels and a child-step path, find the
labels of the nodes reached — using one structural join per step over
the tag index's candidate streams, so no record or data page is ever
touched.  This is what lets the COUNT plan stay identifier-only even
though ``count($t)`` counts *path targets*, not members.
"""

from __future__ import annotations

from ..indexing.labels import NodeLabel
from ..indexing.manager import IndexManager
from ..pattern.pattern import Axis
from ..pattern.structural_join import structural_join


def descend_path(
    indexes: IndexManager,
    starts: list[NodeLabel],
    path: tuple[str, ...],
) -> dict[int, list[NodeLabel]]:
    """Map each start nid to the labels reached by following ``path``
    with parent-child steps.

    ``starts`` must be start-sorted and non-nesting (each reached node
    then has exactly one owning start node).
    """
    owner: dict[int, int] = {label.nid: label.nid for label in starts}
    frontier = list(starts)
    for name in path:
        candidates = indexes.labels_for_tag(name)
        if not candidates:
            return {label.nid: [] for label in starts}
        pairs = structural_join(frontier, candidates, Axis.PC)
        next_owner: dict[int, int] = {}
        next_frontier: list[NodeLabel] = []
        for ancestor, descendant in pairs:
            next_owner[descendant.nid] = owner[ancestor.nid]
            next_frontier.append(descendant)
        owner = next_owner
        # Pairs are emitted in descendant document order; pc steps give
        # each descendant a unique parent, so no deduplication needed.
        frontier = next_frontier

    reached: dict[int, list[NodeLabel]] = {label.nid: [] for label in starts}
    for label in frontier:
        reached[owner[label.nid]].append(label)
    return reached
