"""Label-only path navigation for the physical engine.

Given a set of starting node labels and a child-step path, find the
labels of the nodes reached — using one structural join per step over
the tag index's candidate streams, so no record or data page is ever
touched.  This is what lets the COUNT plan stay identifier-only even
though ``count($t)`` counts *path targets*, not members.

With a columnar node table available the joins run as staircase window
scans over its arrays (:func:`~repro.pattern.structural_join.staircase_join_rows`)
instead of label-object merges.
"""

from __future__ import annotations

from ..indexing.columnar import ColumnarTable
from ..indexing.labels import NodeLabel
from ..indexing.manager import IndexManager
from ..pattern.pattern import Axis
from ..pattern.structural_join import staircase_join_rows, structural_join


def descend_path(
    indexes: IndexManager,
    starts: list[NodeLabel],
    path: tuple[str, ...],
    columnar: ColumnarTable | None = None,
) -> dict[int, list[NodeLabel]]:
    """Map each start nid to the labels reached by following ``path``
    with parent-child steps.

    ``starts`` must be start-sorted and non-nesting (each reached node
    then has exactly one owning start node).
    """
    if columnar is not None:
        reached = _descend_path_columnar(indexes, starts, path, columnar)
        if reached is not None:
            return reached
    owner: dict[int, int] = {label.nid: label.nid for label in starts}
    frontier = list(starts)
    for name in path:
        candidates = indexes.labels_for_tag(name)
        if not candidates:
            return {label.nid: [] for label in starts}
        pairs = structural_join(frontier, candidates, Axis.PC)
        next_owner: dict[int, int] = {}
        next_frontier: list[NodeLabel] = []
        for ancestor, descendant in pairs:
            next_owner[descendant.nid] = owner[ancestor.nid]
            next_frontier.append(descendant)
        owner = next_owner
        # Pairs are emitted in descendant document order; pc steps give
        # each descendant a unique parent, so no deduplication needed.
        frontier = next_frontier

    reached: dict[int, list[NodeLabel]] = {label.nid: [] for label in starts}
    for label in frontier:
        reached[owner[label.nid]].append(label)
    return reached


def _descend_path_columnar(
    indexes: IndexManager,
    starts: list[NodeLabel],
    path: tuple[str, ...],
    table: ColumnarTable,
) -> dict[int, list[NodeLabel]] | None:
    """Row-based descent; None when a label is unknown to the table."""
    start_rows = table.rows_for_labels(starts)
    if start_rows is None:
        return None
    symbols = indexes.store.meta.symbols
    owner: dict[int, int] = {row: row for row in start_rows}
    frontier = list(start_rows)
    for name in path:
        sym = symbols.lookup(name)
        stream = table.stream_for_tag(sym) if sym is not None else None
        if stream is None or not stream.size:
            frontier = []
            break
        grouped = staircase_join_rows(table.stream_for_rows(frontier), stream, Axis.PC)
        next_owner: dict[int, int] = {}
        next_frontier: list[int] = []
        for parent_row, child_rows in grouped.items():
            owning = owner[parent_row]
            for child_row in child_rows:
                next_owner[child_row] = owning
                next_frontier.append(child_row)
        next_frontier.sort()  # document order for the next join's input
        owner = next_owner
        frontier = next_frontier

    label_of_row = table.label_of_row
    reached: dict[int, list[NodeLabel]] = {
        table.nids[row]: [] for row in start_rows
    }
    for row in frontier:
        reached[table.nids[owner[row]]].append(label_of_row(row))
    return reached
