"""The cost-based optimizer: statistics-driven plan choice + feedback.

TIMBER's Query Optimizer box (Fig. 12), instantiated: for a query in
the grouping family the optimizer enumerates the alternative plans —
the GROUPBY rewrite, the naive join under both join strategies, and
(for 3-level nested FLWRs) the join-graph-isolation collapse against
direct per-binding evaluation — costs each one from the load-time
:mod:`~repro.indexing.statistics` through
:class:`~repro.query.estimate.CardinalityEstimator`, and picks the
cheapest.  It also costs the *match strategy* (columnar staircase vs
object walk) and the *grouping strategy* (identifier sort vs hash vs
the footnote-8 value-index probe).

The loop closes through the profiler: :class:`FeedbackLoop` compares
every operator's estimated rows against the observed cardinality; a
divergence beyond :data:`DIVERGENCE_RATIO` flags the plan, stores the
actuals as corrections, and the next preparation re-costs with the
corrections applied (the service layer drops its plan-cache entry on
the flag).  Every decision is surfaced in EXPLAIN's
``=== cost model ===`` section.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import TranslationError
from ..indexing.manager import IndexManager
from ..storage.store import NodeStore
from .estimate import SORT_COMPARISON_WEIGHT, CardinalityEstimator, PlanEstimate
from .plan import PlanNode
from .rewrite import collapse_nested, rewrite
from .translate import recognize_nested, translate

#: Estimate-vs-actual row ratio beyond which a plan is flagged for
#: re-costing.  Documented contract: on the paper's workloads (E1–E4)
#: every operator estimate stays within this ratio of the observed
#: cardinality; anything beyond it is treated as a mis-estimate.
DIVERGENCE_RATIO = 4.0


class OptimizerStatistics:
    """Counters for optimizer work (surfaced in CounterSnapshot)."""

    __slots__ = ("plans_costed", "feedback_flags", "recosts")

    def __init__(self):
        self.plans_costed = 0
        self.feedback_flags = 0
        self.recosts = 0

    def reset(self) -> None:
        self.plans_costed = 0
        self.feedback_flags = 0
        self.recosts = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "optimizer_plans_costed": self.plans_costed,
            "optimizer_feedback_flags": self.feedback_flags,
            "optimizer_recosts": self.recosts,
        }


_GLOBAL_STATS = OptimizerStatistics()


def optimizer_statistics() -> OptimizerStatistics:
    """The module-level statistics object (reset per measured run)."""
    return _GLOBAL_STATS


@dataclass(frozen=True)
class OperatorForecast:
    """One operator's estimated cardinality and cost in the chosen plan."""

    op: str
    detail: str
    est_rows: float
    est_cost: float


@dataclass(frozen=True)
class CandidatePlan:
    """One costed alternative."""

    name: str  # e.g. groupby / naive-nested-loop / isolated-groupby
    mode: str  # the PlanMode value executing it
    join_strategy: str
    cost: float
    rows: float


@dataclass
class PlanDecision:
    """Everything the optimizer decided for one query, for execution
    and for EXPLAIN's ``=== cost model ===`` section."""

    kind: str  # "grouping" | "nested-grouping"
    stats_version: int
    chosen: CandidatePlan
    candidates: list[CandidatePlan]
    forecasts: list[OperatorForecast] = field(default_factory=list)
    match_strategy: str = "columnar"
    match_candidates: list[tuple[str, float]] = field(default_factory=list)
    grouping_strategy: str | None = None
    grouping_candidates: list[tuple[str, float]] = field(default_factory=list)
    recosted: bool = False

    @property
    def rejected(self) -> list[CandidatePlan]:
        return [c for c in self.candidates if c.name != self.chosen.name]


class Optimizer:
    """Cost the alternatives, pick the cheapest, remember the forecast."""

    def __init__(self, store: NodeStore, indexes: IndexManager):
        self.store = store
        self.indexes = indexes
        self.estimator = CardinalityEstimator(store, indexes)

    # ------------------------------------------------------------------
    def decide(
        self,
        expr,
        root_tag: str,
        *,
        columnar_available: bool = True,
        grouping_forced: str | None = None,
        corrections: dict[tuple[str, str], float] | None = None,
    ) -> tuple[PlanDecision, PlanNode | None]:
        """Cost the alternatives for a grouping-family query.

        Raises :class:`TranslationError` when the query is outside both
        the 2-level and the 3-level family (the caller falls back to
        the direct interpreter, uncosted).  Returns the decision and
        the chosen plan (``None`` when direct evaluation won).
        """
        est = self.estimator
        try:
            _query, naive = translate(expr, root_tag)
            kind = "grouping"
        except TranslationError:
            nested = recognize_nested(expr)
            kind = "nested-grouping"

        plans: dict[str, PlanNode | None] = {}
        estimates: dict[str, PlanEstimate] = {}
        if kind == "grouping":
            grouped = rewrite(naive)
            estimates["groupby"] = est.estimate_plan(
                grouped, "nested-loop", overrides=corrections
            )
            estimates["naive-nested-loop"] = est.estimate_plan(
                naive, "nested-loop", overrides=corrections
            )
            estimates["naive-value-hash"] = est.estimate_plan(
                naive, "value-hash", overrides=corrections
            )
            plans = {
                "groupby": grouped,
                "naive-nested-loop": naive,
                "naive-value-hash": naive,
            }
            candidates = [
                self._candidate("groupby", "groupby", "nested-loop", estimates),
                self._candidate(
                    "naive-nested-loop", "naive", "nested-loop", estimates
                ),
                self._candidate(
                    "naive-value-hash", "naive-hash", "value-hash", estimates
                ),
            ]
        else:
            collapsed = collapse_nested(nested, root_tag)
            estimates["isolated-groupby"] = est.estimate_plan(
                collapsed, "nested-loop", overrides=corrections
            )
            plans = {"isolated-groupby": collapsed, "direct-nested-loop": None}
            isolated = self._candidate(
                "isolated-groupby", "groupby", "nested-loop", estimates
            )
            candidates = [
                isolated,
                CandidatePlan(
                    name="direct-nested-loop",
                    mode="direct",
                    join_strategy="nested-loop",
                    cost=self._direct_nested_cost(nested),
                    rows=isolated.rows,
                ),
            ]

        chosen = min(candidates, key=lambda c: c.cost)  # stable: first wins ties
        chosen_plan = plans[chosen.name]
        chosen_estimate = estimates.get(chosen.name)
        forecasts = (
            [
                OperatorForecast(
                    op=node.op,
                    detail=node.describe()[len(node.op) :].strip(),
                    est_rows=rows,
                    est_cost=cost,
                )
                for node, rows, cost in chosen_estimate.per_node
            ]
            if chosen_estimate is not None
            else []
        )
        match_strategy, match_candidates = self._match_choice(
            chosen_plan, columnar_available
        )
        grouping_strategy, grouping_candidates = self._grouping_choice(
            chosen_plan, grouping_forced
        )
        _GLOBAL_STATS.plans_costed += 1
        if corrections:
            _GLOBAL_STATS.recosts += 1
        decision = PlanDecision(
            kind=kind,
            stats_version=est.statistics_version,
            chosen=chosen,
            candidates=candidates,
            forecasts=forecasts,
            match_strategy=match_strategy,
            match_candidates=match_candidates,
            grouping_strategy=grouping_strategy,
            grouping_candidates=grouping_candidates,
            recosted=bool(corrections),
        )
        return decision, chosen_plan

    def _candidate(
        self,
        name: str,
        mode: str,
        join_strategy: str,
        estimates: dict[str, PlanEstimate],
    ) -> CandidatePlan:
        estimate = estimates[name]
        return CandidatePlan(
            name=name,
            mode=mode,
            join_strategy=join_strategy,
            cost=estimate.cost,
            rows=estimate.rows,
        )

    # ------------------------------------------------------------------
    # Match-strategy and grouping-strategy costing
    # ------------------------------------------------------------------
    def _match_choice(
        self, plan: PlanNode | None, columnar_available: bool
    ) -> tuple[str, list[tuple[str, float]]]:
        """Columnar staircase merge vs object walk, costed per pattern
        match the plan performs."""
        if plan is None:
            return "interpreter", []
        patterns = []
        for node in plan.walk():
            if node.op in ("select", "groupby"):
                patterns.append(node.params["pattern"])
            elif node.op == "left_outer_join":
                patterns.append(node.params["right_pattern"])
        if not patterns:
            return "object-walk", []
        # Columnar: one merge pass over the candidate streams (per-tag
        # counts); object walk: a full node sweep per pattern match.
        columnar_cost = sum(self.estimator.pattern_match_cost(p) for p in patterns)
        walk_cost = float(len(patterns) * self.store.n_nodes())
        candidates = [("columnar", columnar_cost), ("object-walk", walk_cost)]
        if columnar_available and columnar_cost <= walk_cost:
            return "columnar", candidates
        return "object-walk", candidates

    def _grouping_choice(
        self, plan: PlanNode | None, forced: str | None
    ) -> tuple[str | None, list[tuple[str, float]]]:
        """Identifier sort vs hash vs the value-index probe (footnote 8:
        the index returns value-node identifiers, so every witness pays
        a parent-chain navigation to the grouped element)."""
        if plan is None:
            return None, []
        groupbys = plan.find("groupby")
        if not groupbys:
            return None, []
        witnesses = max(self.estimator._groupby_witnesses(groupbys[0]), 1.0)
        pattern = groupbys[0].params["pattern"]
        basis_label = groupbys[0].params["basis"][0].rstrip("*")
        basis_tag = pattern.node(basis_label).predicate.tag_constraint()
        distinct = (
            float(self.estimator.distinct_count(basis_tag)) if basis_tag else witnesses
        )
        sort_cost = witnesses * (
            1.0 + SORT_COMPARISON_WEIGHT * math.log2(max(witnesses, 2.0))
        )
        hash_cost = 2.0 * witnesses  # hashing constant ~2 lookups-worth per key
        probe_cost = 3.0 * witnesses + distinct  # parent-chain hops per posting
        candidates = [
            ("sort", sort_cost),
            ("hash", hash_cost),
            ("value-index", probe_cost),
        ]
        if forced is not None:
            return forced, candidates
        chosen = min(candidates, key=lambda item: item[1])[0]
        return chosen, candidates

    def _direct_nested_cost(self, nested) -> float:
        """Per-binding re-evaluation of a 3-level nested FLWR: the outer
        FOR re-runs the middle FLWR per distinct value, which re-runs
        the inner FLWR per *its* distinct value — the multiplicative
        blow-up join-graph isolation removes."""
        est = self.estimator
        inner = nested.inner
        total = float(self.store.n_nodes())  # each FLWR walks the document
        n1 = float(est.tag_count(nested.outer_group_tag))
        d1 = float(max(est.distinct_count(nested.outer_group_tag), 1))
        n2 = float(est.tag_count(inner.group_tag))
        d2 = float(max(est.distinct_count(inner.group_tag), 1))
        n3 = float(est.tag_count(inner.inner_tag))
        per_inner = total + n3 * (len(inner.condition_path) + 1)
        per_middle = total + n2 * (len(nested.link_path) + 1) + d2 * per_inner
        return total + n1 + d1 * per_middle


# ----------------------------------------------------------------------
# The feedback loop (estimated vs actual cardinalities)
# ----------------------------------------------------------------------
class FeedbackLoop:
    """Estimate-vs-actual tracking per query text.

    ``observe`` compares a decision's operator forecasts against the
    observed per-operator cardinalities; a divergence beyond ``ratio``
    stores the actuals as corrections and flags the plan.  The next
    :meth:`corrections` call hands the stored actuals to the estimator
    (re-cost); :meth:`consume_flag` lets a plan cache drop its entry
    exactly once per flagging.
    """

    def __init__(self, ratio: float = DIVERGENCE_RATIO):
        self.ratio = ratio
        self._corrections: dict[str, dict[tuple[str, str], float]] = {}
        self._actuals: dict[str, dict[tuple[str, str], float]] = {}
        self._flagged: dict[str, bool] = {}

    def observe(
        self,
        key: str,
        forecasts: list[OperatorForecast],
        actuals: dict[tuple[str, str], float],
    ) -> bool:
        """Record observed cardinalities; returns True when the plan was
        newly flagged as mis-estimated."""
        if not forecasts or not actuals:
            return False
        self._actuals[key] = dict(actuals)
        diverged: dict[tuple[str, str], float] = {}
        for forecast in forecasts:
            actual = actuals.get((forecast.op, forecast.detail))
            if actual is None:
                continue
            estimated = max(forecast.est_rows, 1.0)
            observed = max(float(actual), 1.0)
            if max(estimated, observed) / min(estimated, observed) > self.ratio:
                diverged[(forecast.op, forecast.detail)] = float(actual)
        if not diverged:
            return False
        if self._corrections.get(key) == diverged:
            return False  # already corrected; the re-costed plan stands
        self._corrections[key] = diverged
        self._flagged[key] = True
        _GLOBAL_STATS.feedback_flags += 1
        return True

    def corrections(self, key: str) -> dict[tuple[str, str], float] | None:
        return self._corrections.get(key)

    def actuals(self, key: str) -> dict[tuple[str, str], float]:
        return self._actuals.get(key, {})

    def consume_flag(self, key: str) -> bool:
        return self._flagged.pop(key, False)
