"""A from-scratch B+tree used by the value index.

Keys are arbitrary comparable objects (the value index uses
``(tag_sym, content)`` tuples); every key maps to a *posting list* of
values, because XML value indexes are inherently multi-valued ("an index
on value is built over some domain, and there could be many different
elements ... rolled into one index", Sec. 5.3 footnote).

The tree supports insertion, exact search, and ordered range scans over
``[lo, hi]`` bounds (either side optional).  Deletion is implemented as
posting removal plus lazy structural shrinking — the database is
bulk-loaded, so underflow rebalancing is not needed for the workloads,
but removal keeps postings correct if callers retract entries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from ..errors import IndexError_

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "postings", "next")

    def __init__(self):
        self.keys: list[Any] = []
        self.postings: list[list[Any]] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self):
        # children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BPlusTree:
    """Ordered key -> posting-list map with range scans."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise IndexError_("B+tree order must be at least 4")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._n_keys = 0
        self._n_entries = 0
        self.height = 1

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._n_keys

    @property
    def n_entries(self) -> int:
        """Total number of posted values across all keys."""
        return self._n_entries

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` to the posting list of ``key``."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self.height += 1

    def _insert_into(self, node: _Leaf | _Internal, key: Any, value: Any):
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.postings[index].append(value)
                self._n_entries += 1
                return None
            node.keys.insert(index, key)
            node.postings.insert(index, [value])
            self._n_keys += 1
            self._n_entries += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Leaf):
        middle = len(node.keys) // 2
        right = _Leaf()
        right.keys = node.keys[middle:]
        right.postings = node.postings[middle:]
        node.keys = node.keys[:middle]
        node.postings = node.postings[:middle]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> list[Any]:
        """The posting list for ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.postings[index])
        return []

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range_scan(
        self, lo: Any = None, hi: Any = None
    ) -> Iterator[tuple[Any, list[Any]]]:
        """Yield ``(key, postings)`` for keys in ``[lo, hi]``, in order.

        ``lo=None`` starts at the smallest key; ``hi=None`` runs to the
        largest.
        """
        if lo is None:
            leaf: _Leaf | _Internal = self._root
            while isinstance(leaf, _Internal):
                leaf = leaf.children[0]
            index = 0
        else:
            leaf = self._find_leaf(lo)
            index = bisect_left(leaf.keys, lo)
        current: _Leaf | None = leaf  # type: ignore[assignment]
        while current is not None:
            while index < len(current.keys):
                key = current.keys[index]
                if hi is not None and key > hi:
                    return
                yield key, list(current.postings[index])
                index += 1
            current = current.next
            index = 0

    def keys(self) -> Iterator[Any]:
        """All keys in ascending order."""
        for key, _ in self.range_scan():
            yield key

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        return self.range_scan()

    # ------------------------------------------------------------------
    # Remove
    # ------------------------------------------------------------------
    def remove(self, key: Any, value: Any) -> bool:
        """Remove one posting of ``value`` under ``key``.

        Returns ``True`` when found.  Empty posting lists drop the key
        (leaf underflow is tolerated: lookups and scans stay correct).
        """
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        postings = leaf.postings[index]
        try:
            postings.remove(value)
        except ValueError:
            return False
        self._n_entries -= 1
        if not postings:
            del leaf.keys[index]
            del leaf.postings[index]
            self._n_keys -= 1
        return True

    # ------------------------------------------------------------------
    # Validation (used by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise if ordering or fanout invariants are violated."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain must be globally sorted.
        previous = None
        for key, postings in self.range_scan():
            if previous is not None and not previous < key:
                raise IndexError_(f"leaf chain out of order near {key!r}")
            if not postings:
                raise IndexError_(f"empty posting list for {key!r}")
            previous = key

    def _check_node(self, node, lo, hi, is_root=False) -> None:
        keys = node.keys
        for a, b in zip(keys, keys[1:]):
            if not a < b:
                raise IndexError_(f"unsorted keys {a!r} >= {b!r}")
        for key in keys:
            if lo is not None and key < lo:
                raise IndexError_(f"key {key!r} below bound {lo!r}")
            if hi is not None and key >= hi:
                raise IndexError_(f"key {key!r} above bound {hi!r}")
        if isinstance(node, _Internal):
            if len(node.children) != len(keys) + 1:
                raise IndexError_("internal fanout mismatch")
            if len(node.children) > self.order + 1:
                raise IndexError_("internal node overfull")
            bounds = [lo, *keys, hi]
            for i, child in enumerate(node.children):
                self._check_node(child, bounds[i], bounds[i + 1])
        else:
            if len(keys) > self.order + 1:
                raise IndexError_("leaf overfull")
