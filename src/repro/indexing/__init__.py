"""Indexing substrate (S3/S4): containment labels, B+tree, tag/value indexes."""

from .btree import BPlusTree
from .labels import NodeLabel, assert_document_order, sort_document_order
from .manager import IndexManager
from .tag_index import TagIndex
from .value_index import ValueIndex

__all__ = [
    "BPlusTree",
    "NodeLabel",
    "assert_document_order",
    "sort_document_order",
    "IndexManager",
    "TagIndex",
    "ValueIndex",
]
