"""Store statistics for the cost-based optimizer.

TIMBER's Query Optimizer (Fig. 12) costs plans from statistics the
Index Manager maintains; the paper points at Wu/Patel/Jagadish (EDBT
2002) for the estimation problem itself.  This module is the statistics
side of that pair: one :class:`StoreStatistics` object per store
generation, collected at load time from the tag and value indexes —
no data-page I/O — and persisted into the index snapshot
(:mod:`repro.indexing.persist`, record kind ``0x04``) so a reopen
serves estimates without a rebuild scan.

Per tag the statistics record:

* ``count`` — number of nodes (the structural-join candidate stream
  length, the unit plan costing multiplies);
* ``distinct_values`` — distinct content values (equality selectivity
  ``1/distinct``; the expected group count of a GROUPBY basis);
* ``min_level`` / ``max_level`` — the containment-label level band the
  tag occupies (how deep staircase merges must look);
* ``total_subtree_nodes`` — summed subtree sizes, so
  ``avg_subtree_size`` prices materializing one element with everything
  below it.

The object is immutable and stamped with the store generation it was
built against; any mutation (load, drop, compact, repair) bumps the
generation and thereby invalidates it — the same lifecycle as the
columnar node table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TagStatistics:
    """Statistics for one tag symbol."""

    tag_sym: int
    count: int
    distinct_values: int
    min_level: int
    max_level: int
    total_subtree_nodes: int

    @property
    def avg_subtree_size(self) -> float:
        """Mean node count of a subtree rooted at this tag."""
        if self.count <= 0:
            return 1.0
        return self.total_subtree_nodes / self.count


@dataclass(frozen=True)
class StoreStatistics:
    """Per-tag statistics for one store generation.

    ``generation`` doubles as the *statistics version*: caches that
    embed it (the service plan/result caches, the optimizer's plan
    fingerprints) are invalidated by any statistics refresh.
    """

    generation: int
    total_nodes: int
    per_tag: dict[int, TagStatistics]

    @property
    def version(self) -> int:
        """The statistics version (the generation they were built at)."""
        return self.generation

    @property
    def n_tags(self) -> int:
        return len(self.per_tag)

    def for_tag(self, tag_sym: int) -> TagStatistics | None:
        return self.per_tag.get(tag_sym)

    def rows(self) -> list[TagStatistics]:
        """Stable (tag-symbol-ordered) rows, for serialization."""
        return [self.per_tag[sym] for sym in sorted(self.per_tag)]


def build_statistics(store, tag_index, value_index, generation: int) -> StoreStatistics:
    """Collect statistics from the indexes (no data pages touched).

    One pass over the tag index's posting lists gives counts, level
    bands, and subtree sizes (containment labels encode subtree size as
    ``(end - start + 1) // 2``); one pass over the value index's keys
    gives per-tag distinct counts.
    """
    distinct_by_tag: dict[int, int] = {}
    for tag_sym, _content in value_index._tree.keys():
        distinct_by_tag[tag_sym] = distinct_by_tag.get(tag_sym, 0) + 1

    per_tag: dict[int, TagStatistics] = {}
    total_nodes = 0
    for tag_sym in tag_index.tags():
        # Raw posting access: statistics building is maintenance work
        # (like the index build itself) and must not inflate the lookup
        # counters that per-query profiles delta against.
        labels = tag_index._postings.get(tag_sym, [])
        if not labels:
            continue
        min_level = min(label.level for label in labels)
        max_level = max(label.level for label in labels)
        total_subtree = sum((label.end - label.start + 1) // 2 for label in labels)
        per_tag[tag_sym] = TagStatistics(
            tag_sym=tag_sym,
            count=len(labels),
            distinct_values=distinct_by_tag.get(tag_sym, 0),
            min_level=min_level,
            max_level=max_level,
            total_subtree_nodes=total_subtree,
        )
        total_nodes += len(labels)
    return StoreStatistics(
        generation=generation, total_nodes=total_nodes, per_tag=per_tag
    )


def merge_ingest_batch(
    stats: StoreStatistics,
    records,
    distinct_added: dict[int, int],
    root_adjust: tuple[int, int] | None,
    generation: int,
) -> StoreStatistics:
    """A *new* :class:`StoreStatistics` = ``stats`` + one ingest batch.

    ``records`` are the batch's node records (counts, level bands, and
    subtree sizes come from their labels, mirroring
    :func:`build_statistics`); ``distinct_added`` maps tag symbols to
    the number of content values the batch introduced that the value
    index had never seen; ``root_adjust`` is ``(tag_sym, delta)`` for
    the ingested root whose label width — and therefore subtree-size
    contribution — grew with the batch.  Cost is proportional to the
    batch, not the store.
    """
    per_tag = dict(stats.per_tag)
    touched: dict[int, list] = {}
    for record in records:
        touched.setdefault(record.tag_sym, []).append(record)
    for tag_sym, batch in touched.items():
        count = len(batch)
        min_level = min(record.level for record in batch)
        max_level = max(record.level for record in batch)
        total_subtree = sum(record.subtree_node_count for record in batch)
        old = per_tag.get(tag_sym)
        if old is None:
            per_tag[tag_sym] = TagStatistics(
                tag_sym=tag_sym,
                count=count,
                distinct_values=distinct_added.get(tag_sym, 0),
                min_level=min_level,
                max_level=max_level,
                total_subtree_nodes=total_subtree,
            )
        else:
            per_tag[tag_sym] = TagStatistics(
                tag_sym=tag_sym,
                count=old.count + count,
                distinct_values=old.distinct_values + distinct_added.get(tag_sym, 0),
                min_level=min(old.min_level, min_level),
                max_level=max(old.max_level, max_level),
                total_subtree_nodes=old.total_subtree_nodes + total_subtree,
            )
    if root_adjust is not None:
        tag_sym, delta = root_adjust
        old = per_tag[tag_sym]
        per_tag[tag_sym] = TagStatistics(
            tag_sym=old.tag_sym,
            count=old.count,
            distinct_values=old.distinct_values,
            min_level=old.min_level,
            max_level=old.max_level,
            total_subtree_nodes=old.total_subtree_nodes + delta,
        )
    return StoreStatistics(
        generation=generation,
        total_nodes=stats.total_nodes + len(records),
        per_tag=per_tag,
    )


def statistics_from_rows(
    rows: list[TagStatistics], generation: int
) -> StoreStatistics:
    """Reassemble a :class:`StoreStatistics` from persisted rows."""
    per_tag = {row.tag_sym: row for row in rows}
    total_nodes = sum(row.count for row in rows)
    return StoreStatistics(
        generation=generation, total_nodes=total_nodes, per_tag=per_tag
    )
