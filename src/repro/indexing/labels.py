"""Containment labels used by structural joins.

A :class:`NodeLabel` is the quadruple the structural-join literature
(Al-Khalifa et al. [1], cited in Sec. 5.2) operates on:
``(nid, start, end, level)``.  All candidate streams flowing into the
pattern matcher are lists of labels sorted by ``start`` (document
order); structural joins then never need the actual data.
"""

from __future__ import annotations

from typing import NamedTuple


class NodeLabel(NamedTuple):
    """Structural label of one stored node."""

    nid: int
    start: int
    end: int
    level: int

    def contains(self, other: "NodeLabel") -> bool:
        """True when ``self`` is a proper ancestor of ``other``."""
        return self.start < other.start and other.end < self.end

    def is_parent_of(self, other: "NodeLabel") -> bool:
        """True when ``self`` is the parent of ``other``."""
        return self.contains(other) and self.level + 1 == other.level

    def precedes(self, other: "NodeLabel") -> bool:
        """Document-order comparison (disjoint or containing)."""
        return self.start < other.start


def sort_document_order(labels: list[NodeLabel]) -> list[NodeLabel]:
    """Return labels sorted by ``start`` — the order joins require."""
    return sorted(labels, key=lambda label: label.start)


def assert_document_order(labels: list[NodeLabel]) -> None:
    """Debug helper: raise if a stream is not start-sorted."""
    for previous, current in zip(labels, labels[1:]):
        if previous.start > current.start:
            raise ValueError(
                f"stream not in document order: {previous} before {current}"
            )
