"""Tag-name index: tag symbol -> document-ordered label stream.

The paper's experiments "constructed an index on tag-name, so that given
a tag, we could efficiently list (by node identifier) all nodes with that
tag" (Sec. 6).  That is exactly this structure: per tag symbol, the
:class:`~repro.indexing.labels.NodeLabel` list sorted by ``start``.
Structural joins consume these streams directly.
"""

from __future__ import annotations

from ..errors import IndexError_
from .labels import NodeLabel


class TagIndex:
    """Per-tag posting lists of node labels in document order."""

    def __init__(self):
        self._postings: dict[int, list[NodeLabel]] = {}
        self._sorted = True
        self.lookups = 0
        self.postings_served = 0

    def add(self, tag_sym: int, label: NodeLabel) -> None:
        """Post one node under its tag.  Bulk loading appends in document
        order; out-of-order additions are re-sorted lazily."""
        postings = self._postings.setdefault(tag_sym, [])
        if postings and postings[-1].start > label.start:
            self._sorted = False
        postings.append(label)

    def replace_label(self, tag_sym: int, old: NodeLabel, new: NodeLabel) -> None:
        """Swap one posting in place (same nid/start, new end label).

        The streaming ingest advances a document root's ``end`` at every
        batch commit; the posting is located by its unchanged ``start``
        with one bisect, so maintenance cost is independent of the
        posting list length.
        """
        self._ensure_sorted()
        postings = self._postings.get(tag_sym)
        if not postings:
            raise IndexError_(f"tag {tag_sym}: no postings to replace")
        lo, hi = 0, len(postings)
        while lo < hi:
            mid = (lo + hi) // 2
            if postings[mid].start < old.start:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(postings) or postings[lo].nid != old.nid:
            raise IndexError_(f"tag {tag_sym}: posting for nid {old.nid} not found")
        postings[lo] = new

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            for postings in self._postings.values():
                postings.sort(key=lambda label: label.start)
            self._sorted = True

    def labels(self, tag_sym: int) -> list[NodeLabel]:
        """Document-ordered labels of all nodes with this tag."""
        self._ensure_sorted()
        self.lookups += 1
        postings = list(self._postings.get(tag_sym, []))
        self.postings_served += len(postings)
        return postings

    def count(self, tag_sym: int) -> int:
        """Posting length without copying (selectivity estimation)."""
        return len(self._postings.get(tag_sym, ()))

    def tags(self) -> list[int]:
        return sorted(self._postings)

    def total_postings(self) -> int:
        return sum(len(postings) for postings in self._postings.values())

    def check_invariants(self) -> None:
        """Every posting list must be start-sorted with unique nids."""
        self._ensure_sorted()
        for tag_sym, postings in self._postings.items():
            seen: set[int] = set()
            for previous, current in zip(postings, postings[1:]):
                if previous.start >= current.start:
                    raise IndexError_(f"tag {tag_sym}: postings out of order")
            for label in postings:
                if label.nid in seen:
                    raise IndexError_(f"tag {tag_sym}: duplicate nid {label.nid}")
                seen.add(label.nid)
