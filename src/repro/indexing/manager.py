"""Index manager: builds and serves the tag and value indexes of a store.

TIMBER's Index Manager (Fig. 12) sits beside the Data Manager over
Shore.  Ours builds both indexes with one sequential scan of the node
store — the same scan order the bulk loader wrote, so building is
page-sequential — and then serves label streams to the pattern matcher
without touching data pages.

Indexes are rebuilt on open rather than persisted; with bulk-loaded
read-mostly databases this keeps the storage format simple while the
measured query paths are unaffected (index construction happens before
statistics are reset for a run).
"""

from __future__ import annotations

import threading

from ..cancellation import deadline_scope
from ..errors import IndexError_
from ..storage.store import NodeStore
from .labels import NodeLabel
from .tag_index import TagIndex
from .value_index import ValueIndex


class IndexManager:
    """Tag + value indexes over one :class:`NodeStore`."""

    def __init__(self, store: NodeStore):
        self.store = store
        self.tag_index = TagIndex()
        self.value_index = ValueIndex()
        self._built = False
        self._build_lock = threading.Lock()
        # Columnar node table for the current store generation; built
        # lazily on first query and invalidated by every rebuild.
        self._columnar = None
        self._columnar_lock = threading.Lock()
        # Optimizer statistics for the current store generation; built
        # eagerly by build() (load time) and lazily after a snapshot
        # restore that predates the statistics chunk.
        self._statistics = None
        self._statistics_lock = threading.Lock()
        # Streaming-ingest maintenance counters: batches folded into the
        # live structures incrementally, and full rebuilds that folding
        # made unnecessary (one per structure per batch).
        self.incremental_updates = 0
        self.rebuilds_avoided = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)build both indexes with one full store scan.

        The build is maintenance work shared by every future query, so
        it runs shielded from any per-query deadline active on this
        thread — a slow query may time out, but it must not abandon a
        half-built index for its successors.
        """
        tag_index = TagIndex()
        value_index = ValueIndex()
        with deadline_scope(None):
            for record in self.store.scan():
                label = NodeLabel(record.nid, record.start, record.end, record.level)
                tag_index.add(record.tag_sym, label)
                if record.content is not None:
                    value_index.add(record.tag_sym, record.content, label)
        # Swap in atomically (w.r.t. the GIL) only once complete, so
        # concurrent readers never observe a partially filled index.
        self.tag_index = tag_index
        self.value_index = value_index
        self._built = True
        self._columnar = None  # stale for the new generation; rebuilt lazily
        # Statistics are collected at load time — here, right after the
        # scan, so a following save() persists them with the snapshot.
        from .statistics import build_statistics

        self._statistics = build_statistics(
            self.store, tag_index, value_index, self.store.generation
        )

    def ensure_built(self) -> None:
        """Build on first use; safe to race from many query threads."""
        if self._built:
            return
        with self._build_lock:
            if not self._built:
                self.build()

    # ------------------------------------------------------------------
    # Incremental maintenance (streaming ingest)
    # ------------------------------------------------------------------
    def apply_ingest_batch(
        self,
        records,
        root_record,
        old_root_record,
        first_batch: bool,
        doc_id: int,
    ) -> None:
        """Fold one *committed* ingest batch into every index structure
        — tag index, value index, statistics, and columnar table —
        instead of rebuilding them from a store scan.

        ``records`` are the batch's new node records in nid order (the
        root included on the first batch); ``root_record`` is the root
        as committed by this batch, ``old_root_record`` its pre-batch
        version (None on the first batch).  The batch's nids/labels all
        exceed existing ones, so tag postings append in sorted position,
        the B+tree inserts keep their natural order, and the columnar
        table extends group-by-group.  Structures are swapped in only
        once complete; concurrent readers see either the pre- or
        post-batch snapshot, never a half-applied one.

        Statistics are versioned at the post-batch store generation, so
        every cache keyed on the statistics version invalidates at batch
        granularity.  The columnar table is extended only when it was
        fresh for the pre-batch generation; a stale one stays stale and
        rebuilds lazily as before.
        """
        if not self._built:
            # Nothing live to maintain: the first query after the ingest
            # pays one full build, exactly as before this subsystem.
            return
        with deadline_scope(None):
            from .statistics import merge_ingest_batch

            root_replace = old_root_record is not None and (
                old_root_record.end != root_record.end
            )

            # Value index first: distinct-value deltas must be observed
            # *before* the batch's own contents are inserted.
            distinct_added: dict[int, int] = {}
            value_index = self.value_index
            for record in records:
                if record.content is None:
                    continue
                if not value_index.contains(record.tag_sym, record.content):
                    distinct_added[record.tag_sym] = (
                        distinct_added.get(record.tag_sym, 0) + 1
                    )
                value_index.add(
                    record.tag_sym,
                    record.content,
                    NodeLabel(record.nid, record.start, record.end, record.level),
                )
            if root_replace and root_record.content is not None:
                value_index.replace_label(
                    root_record.tag_sym,
                    root_record.content,
                    NodeLabel(
                        old_root_record.nid,
                        old_root_record.start,
                        old_root_record.end,
                        old_root_record.level,
                    ),
                    NodeLabel(
                        root_record.nid,
                        root_record.start,
                        root_record.end,
                        root_record.level,
                    ),
                )
            self.incremental_updates += 1
            self.rebuilds_avoided += 1

            tag_index = self.tag_index
            for record in records:
                tag_index.add(
                    record.tag_sym,
                    NodeLabel(record.nid, record.start, record.end, record.level),
                )
            if root_replace:
                tag_index.replace_label(
                    root_record.tag_sym,
                    NodeLabel(
                        old_root_record.nid,
                        old_root_record.start,
                        old_root_record.end,
                        old_root_record.level,
                    ),
                    NodeLabel(
                        root_record.nid,
                        root_record.start,
                        root_record.end,
                        root_record.level,
                    ),
                )
            self.incremental_updates += 1
            self.rebuilds_avoided += 1

            generation = self.store.generation
            stats = self._statistics
            if stats is not None:
                root_adjust = None
                if root_replace:
                    root_adjust = (
                        root_record.tag_sym,
                        root_record.subtree_node_count
                        - old_root_record.subtree_node_count,
                    )
                self._statistics = merge_ingest_batch(
                    stats, records, distinct_added, root_adjust, generation
                )
                self.incremental_updates += 1
                self.rebuilds_avoided += 1

            table = self._columnar
            if table is not None and table.generation == generation - 1:
                from .columnar import extend_columnar_table

                root_update = root_record if root_replace else None
                self._columnar = extend_columnar_table(
                    table, records, doc_id, generation, root_update=root_update
                )
                self.incremental_updates += 1
                self.rebuilds_avoided += 1

    # ------------------------------------------------------------------
    # Columnar snapshot (the staircase hot path's node table)
    # ------------------------------------------------------------------
    def ensure_columnar(self):
        """The columnar table for the current store generation.

        Built lazily on first use (from the tag index — no page I/O),
        reused while the generation is stable, and — when the database
        has a directory and the persisted index snapshot is fresh —
        written back into ``indexes.pages`` so a reopen skips this
        build entirely.
        """
        table = self._columnar
        if table is not None and table.generation == self.store.generation:
            return table
        with self._columnar_lock:
            table = self._columnar
            if table is not None and table.generation == self.store.generation:
                return table
            from .columnar import build_columnar_table

            self.ensure_built()
            table = build_columnar_table(self.store, self.tag_index)
            self._columnar = table
            self._persist_columnar()
            return table

    def columnar_if_fresh(self):
        """The cached table when it matches the current generation, else
        None — never triggers a build (EXPLAIN uses this)."""
        table = self._columnar
        if table is not None and table.generation == self.store.generation:
            return table
        return None

    def columnar_status(self) -> dict[str, object]:
        """Snapshot state for EXPLAIN and load reports; non-building."""
        table = self.columnar_if_fresh()
        if table is not None:
            return {
                "state": "ready",
                "rows": table.n_rows,
                "generation": table.generation,
            }
        return {
            "state": "pending",
            "rows": None,
            "generation": self.store.generation,
        }

    # ------------------------------------------------------------------
    # Optimizer statistics (per-tag counts, distincts, levels, subtrees)
    # ------------------------------------------------------------------
    def ensure_statistics(self):
        """The :class:`~repro.indexing.statistics.StoreStatistics` for
        the current store generation.

        Normally already present — :meth:`build` collects statistics at
        load time — this is the lazy path for snapshots persisted before
        the statistics chunk existed, and the staleness guard after a
        generation bump without a rebuild.
        """
        stats = self._statistics
        if stats is not None and stats.generation == self.store.generation:
            return stats
        with self._statistics_lock:
            stats = self._statistics
            if stats is not None and stats.generation == self.store.generation:
                return stats
            from .statistics import build_statistics

            self.ensure_built()
            stats = build_statistics(
                self.store, self.tag_index, self.value_index, self.store.generation
            )
            self._statistics = stats
            self._persist_snapshot_extras()
            return stats

    def statistics_if_fresh(self):
        """The cached statistics when they match the current generation,
        else None — never triggers a build (EXPLAIN and the snapshot
        writer use this)."""
        stats = self._statistics
        if stats is not None and stats.generation == self.store.generation:
            return stats
        return None

    def statistics_version(self) -> int:
        """The statistics version: the store generation the current
        statistics were built against.  Cache keys embed this so a
        statistics refresh (load/compact/repair) can never serve a plan
        costed against stale statistics."""
        return self.ensure_statistics().version

    def statistics_status(self) -> dict[str, object]:
        """Statistics state for EXPLAIN and load reports; non-building."""
        stats = self.statistics_if_fresh()
        if stats is not None:
            return {
                "state": "ready",
                "tags": stats.n_tags,
                "total_nodes": stats.total_nodes,
                "version": stats.version,
            }
        return {
            "state": "pending",
            "tags": None,
            "total_nodes": None,
            "version": self.store.generation,
        }

    def _persist_snapshot_extras(self) -> None:
        """Opportunistically rewrite the index snapshot so the lazily
        built extras (columnar table, statistics) are included.
        Persistence is a cache: any failure (or a snapshot that is
        already stale) is silently skipped."""
        directory = self.store.directory
        if directory is None:
            return
        from .persist import save_indexes, snapshot_is_fresh

        try:
            if snapshot_is_fresh(self.store.meta, directory):
                save_indexes(self, directory)
        except Exception:
            pass

    def _persist_columnar(self) -> None:
        """Opportunistically rewrite the index snapshot with the fresh
        columnar table included."""
        self._persist_snapshot_extras()

    # ------------------------------------------------------------------
    # Persistence (indexes.pages in the database directory)
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Serialize both indexes into ``directory/indexes.pages``."""
        from .persist import save_indexes

        self.ensure_built()
        save_indexes(self, directory)

    def try_load(self, directory: str) -> bool:
        """Load persisted indexes; returns False (leaving the manager
        unbuilt) when missing, corrupt, or stale."""
        from .persist import load_indexes

        return load_indexes(self, directory)

    # ------------------------------------------------------------------
    # Lookups by tag *name* (symbols resolved through the store metadata)
    # ------------------------------------------------------------------
    def labels_for_tag(self, tag: str) -> list[NodeLabel]:
        """Document-ordered labels of every node tagged ``tag``."""
        self.ensure_built()
        sym = self.store.meta.symbols.lookup(tag)
        if sym is None:
            return []
        return self.tag_index.labels(sym)

    def labels_for_tag_value(self, tag: str, content: str) -> list[NodeLabel]:
        """Labels of nodes tagged ``tag`` whose content is ``content``."""
        self.ensure_built()
        sym = self.store.meta.symbols.lookup(tag)
        if sym is None:
            return []
        return self.value_index.labels(sym, content)

    def distinct_values(self, tag: str) -> list[tuple[str, list[NodeLabel]]]:
        """Distinct contents of ``tag`` (ascending) with their postings.

        Serves ``distinct-values(//tag)`` without data page access.
        """
        self.ensure_built()
        sym = self.store.meta.symbols.lookup(tag)
        if sym is None:
            return []
        return list(self.value_index.distinct_values(sym))

    def tag_cardinality(self, tag: str) -> int:
        """Number of nodes with the tag (selectivity estimation)."""
        self.ensure_built()
        sym = self.store.meta.symbols.lookup(tag)
        if sym is None:
            return 0
        return self.tag_index.count(sym)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        if not self._built:
            raise IndexError_("indexes have not been built")
        self.tag_index.check_invariants()
        self.value_index.check_invariants()

    def statistics(self) -> dict[str, int]:
        return {
            "tag_index_lookups": self.tag_index.lookups,
            "value_index_lookups": self.value_index.lookups,
            "tag_index_postings": self.tag_index.total_postings(),
            "value_index_keys": self.value_index.n_keys(),
        }

    def work_counters(self) -> dict[str, int]:
        """Work done against the indexes: lookup calls plus the lengths
        of the candidate streams they served.  Unlike :meth:`statistics`
        this excludes size gauges, so two snapshots subtract to a
        meaningful delta."""
        return {
            "tag_index_lookups": self.tag_index.lookups,
            "value_index_lookups": self.value_index.lookups,
            "index_postings_served": self.tag_index.postings_served
            + self.value_index.postings_served,
            "index_incremental_updates": self.incremental_updates,
            "index_rebuild_avoided": self.rebuilds_avoided,
        }
