"""Columnar node table: the XPath-accelerator hot path.

The pattern matcher's structural predicates are interval containment
tests over ``(start, end, level)`` labels.  The object-walk path
evaluates them against per-node :class:`~repro.indexing.labels.NodeLabel`
tuples — one Python object per candidate, one attribute access per
comparison.  This module stores the same encoding *columnarly*: parallel
``array`` columns in document order (``start``, ``end``, ``level``,
``tag``, ``doc``, ``nid``), plus a tag → row-range directory over a
tag-major permutation of the rows.  Axis steps then become ``bisect``
range scans (Grust's staircase windows: every descendant of a node is a
contiguous ``start`` run) and structural joins become stack-based
staircase merges over flat integer arrays.

A table is built once per store *generation* — the monotonic mutation
counter every load/drop/compact/repair bumps — and cached on the
:class:`~repro.indexing.manager.IndexManager` beside the tag and value
indexes.  ``indexing/persist.py`` serializes it into the same
``indexes.pages`` snapshot (record kind ``0x03``), so reopening a
database directory skips the rebuild.

Row identity: rows are assigned in ascending ``start`` order, and both
``start`` labels and nids come from global monotonic counters assigned
in the same preorder pass, so *row order = start order = nid order*.  A
row index is therefore a complete node identity within one generation,
and the matcher can carry binding tuples as plain integer columns until
final witness materialization.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import NamedTuple, Sequence

try:  # Vectorized staircase kernels when numpy is present (optional).
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

from .labels import NodeLabel

__all__ = [
    "ColumnarTable",
    "ColumnarStatistics",
    "RowStream",
    "EMPTY_STREAM",
    "build_columnar_table",
    "extend_columnar_table",
    "columnar_statistics",
    "numpy_or_none",
]


def numpy_or_none():
    """The numpy module when importable, else None.  The staircase
    kernels vectorize over it; without it the pure-Python merge runs."""
    return _np


def np_view(column):
    """A zero-copy numpy view over an ``array('l')`` column."""
    return _np.frombuffer(column, dtype=_np.dtype("l"))


class ColumnarStatistics:
    """Counters for columnar-path work (surfaced in CounterSnapshot)."""

    __slots__ = ("builds", "extends", "scans", "fallbacks", "window_scans", "merge_joins")

    def __init__(self):
        self.builds = 0
        self.extends = 0
        self.scans = 0
        self.fallbacks = 0
        self.window_scans = 0
        self.merge_joins = 0

    def reset(self) -> None:
        self.builds = 0
        self.extends = 0
        self.scans = 0
        self.fallbacks = 0
        self.window_scans = 0
        self.merge_joins = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "columnar_builds": self.builds,
            "columnar_extends": self.extends,
            "columnar_scans": self.scans,
            "columnar_fallbacks": self.fallbacks,
            "columnar_window_scans": self.window_scans,
            "columnar_merge_joins": self.merge_joins,
        }


_GLOBAL_STATS = ColumnarStatistics()


def columnar_statistics() -> ColumnarStatistics:
    """The module-level statistics object (reset per measured run)."""
    return _GLOBAL_STATS


class RowStream(NamedTuple):
    """A candidate stream as a window over parallel columns.

    ``rows[p]`` maps stream position ``p`` to the global table row;
    ``starts``/``ends``/``levels`` are parallel to ``rows``.  Positions
    ``lo <= p < hi`` are live, and ``starts`` is ascending on them —
    the sortedness every staircase scan relies on.
    """

    rows: Sequence[int]
    starts: Sequence[int]
    ends: Sequence[int]
    levels: Sequence[int]
    lo: int
    hi: int

    @property
    def size(self) -> int:
        """Live window length (``len`` would break ``_replace``)."""
        return self.hi - self.lo

    def row_list(self) -> list[int]:
        """The global rows of the live window, ascending."""
        return list(self.rows[self.lo : self.hi])

    def np_arrays(self):
        """The live window as four numpy arrays (rows, starts, ends,
        levels) — zero-copy for ``array`` columns.  numpy only."""

        def as_np(column):
            if isinstance(column, array):
                return np_view(column)[self.lo : self.hi]
            if isinstance(column, range):
                return _np.arange(
                    column.start + self.lo, column.start + self.hi, dtype=_np.dtype("l")
                )
            return _np.asarray(column[self.lo : self.hi], dtype=_np.dtype("l"))

        return as_np(self.rows), as_np(self.starts), as_np(self.ends), as_np(self.levels)


class ColumnarTable:
    """Document-order columnar node table for one store generation."""

    __slots__ = (
        "generation",
        "nids",
        "starts",
        "ends",
        "levels",
        "tags",
        "docs",
        "tag_rows",
        "tag_starts",
        "tag_ends",
        "tag_levels",
        "tag_dir",
        "_labels",
    )

    def __init__(
        self,
        nids: Sequence[int],
        starts: Sequence[int],
        ends: Sequence[int],
        levels: Sequence[int],
        tags: Sequence[int],
        docs: Sequence[int],
        generation: int = 0,
    ):
        self.generation = generation
        self.nids = array("l", nids)
        self.starts = array("l", starts)
        self.ends = array("l", ends)
        self.levels = array("l", levels)
        self.tags = array("l", tags)
        self.docs = array("l", docs)

        # Tag-major permutation: rows grouped by tag symbol, ascending
        # within each group, with parallel start/end/level columns so a
        # tag stream needs no per-query gather.
        by_tag: dict[int, list[int]] = {}
        for row, tag in enumerate(self.tags):
            by_tag.setdefault(tag, []).append(row)
        tag_rows = array("l")
        tag_dir: dict[int, tuple[int, int]] = {}
        for tag in sorted(by_tag):
            lo = len(tag_rows)
            tag_rows.extend(by_tag[tag])
            tag_dir[tag] = (lo, len(tag_rows))
        starts_col = self.starts
        ends_col = self.ends
        levels_col = self.levels
        self.tag_rows = tag_rows
        self.tag_starts = array("l", [starts_col[r] for r in tag_rows])
        self.tag_ends = array("l", [ends_col[r] for r in tag_rows])
        self.tag_levels = array("l", [levels_col[r] for r in tag_rows])
        self.tag_dir = tag_dir
        # Lazily materialized NodeLabel per row (witness construction).
        self._labels: list[NodeLabel | None] = [None] * len(self.nids)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.nids)

    def label_of_row(self, row: int) -> NodeLabel:
        label = self._labels[row]
        if label is None:
            label = NodeLabel(
                self.nids[row], self.starts[row], self.ends[row], self.levels[row]
            )
            self._labels[row] = label
        return label

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream_for_tag(self, tag_sym: int) -> RowStream:
        """All rows with the tag, as a zero-copy tag-directory window."""
        bounds = self.tag_dir.get(tag_sym)
        if bounds is None:
            return EMPTY_STREAM
        lo, hi = bounds
        return RowStream(
            self.tag_rows, self.tag_starts, self.tag_ends, self.tag_levels, lo, hi
        )

    def stream_all(self) -> RowStream:
        """Every row, in document order (wildcard candidates)."""
        n = len(self.nids)
        return RowStream(range(n), self.starts, self.ends, self.levels, 0, n)

    def stream_for_rows(self, rows: Sequence[int]) -> RowStream:
        """A stream over an ascending ad-hoc row list (binding streams)."""
        starts_col = self.starts
        ends_col = self.ends
        levels_col = self.levels
        return RowStream(
            rows if isinstance(rows, (list, array)) else list(rows),
            array("l", [starts_col[r] for r in rows]),
            array("l", [ends_col[r] for r in rows]),
            array("l", [levels_col[r] for r in rows]),
            0,
            len(rows),
        )

    def restrict(self, stream: RowStream, start_lo: int, start_hi: int) -> RowStream:
        """Narrow a stream to rows whose start lies in [start_lo, start_hi].

        Because a document (or any subtree) occupies one contiguous
        label region, this is document scoping as two bisects.
        """
        lo = bisect_left(stream.starts, start_lo, stream.lo, stream.hi)
        hi = bisect_right(stream.starts, start_hi, lo, stream.hi)
        return stream._replace(lo=lo, hi=hi)

    # ------------------------------------------------------------------
    # Label <-> row conversion
    # ------------------------------------------------------------------
    def row_of_label(self, label: NodeLabel) -> int | None:
        """The row holding ``label``, or None when it is not in the table."""
        row = bisect_left(self.starts, label.start)
        if row < len(self.starts) and self.starts[row] == label.start:
            if self.nids[row] == label.nid:
                return row
        return None

    def rows_for_labels(self, labels: Sequence[NodeLabel]) -> list[int] | None:
        """Convert a start-sorted label list to ascending rows.

        Returns None when any label is unknown — the caller then falls
        back to the object walk rather than silently dropping nodes.
        """
        starts_col = self.starts
        nids_col = self.nids
        n = len(starts_col)
        rows: list[int] = []
        append = rows.append
        for label in labels:
            row = bisect_left(starts_col, label.start)
            if row >= n or starts_col[row] != label.start or nids_col[row] != label.nid:
                return None
            append(row)
        return rows


EMPTY_STREAM = RowStream((), (), (), (), 0, 0)


def build_columnar_table(store, tag_index) -> ColumnarTable:
    """Build the table for the store's current generation.

    Sourced from the tag index's posting lists (already labeled and
    complete — every node has a tag) plus the document catalog; no data
    page is read.
    """
    entries: list[tuple[int, int, int, int, int]] = []
    for tag_sym, postings in tag_index._postings.items():
        entries.extend(
            (label.start, label.end, label.level, label.nid, tag_sym)
            for label in postings
        )
    entries.sort()

    nids = array("l", [e[3] for e in entries])
    starts = array("l", [e[0] for e in entries])
    ends = array("l", [e[1] for e in entries])
    levels = array("l", [e[2] for e in entries])
    tags = array("l", [e[4] for e in entries])

    # Documents occupy disjoint ascending nid ranges; one merge pass
    # assigns each row its doc id.
    ranges = sorted(
        (info.first_nid, info.last_nid, info.doc_id) for info in store.documents()
    )
    docs = array("l")
    index = 0
    n_ranges = len(ranges)
    for nid in nids:
        while index < n_ranges and nid > ranges[index][1]:
            index += 1
        if index < n_ranges and ranges[index][0] <= nid:
            docs.append(ranges[index][2])
        else:
            docs.append(0)

    _GLOBAL_STATS.builds += 1
    return ColumnarTable(
        nids, starts, ends, levels, tags, docs, generation=store.generation
    )


def extend_columnar_table(
    table: ColumnarTable,
    records,
    doc_id: int,
    generation: int,
    root_update=None,
) -> ColumnarTable:
    """A *new* table = ``table`` + one committed ingest batch.

    The streaming ingest appends a batch of records whose nids, starts,
    and ends all exceed every existing row's (global monotonic
    counters), so document-order columns extend by concatenation and
    each tag-directory group extends at its tail — no global sort and no
    per-row Python rebuild, which is what makes per-batch maintenance
    cheaper than :func:`build_columnar_table` per batch.

    ``root_update`` is the ingested document's root record carrying its
    advanced ``end`` label; its row (and tag-directory mirror) is
    patched in the copies.  The input ``table`` is never mutated:
    concurrent readers holding it keep a consistent pre-batch snapshot.
    """
    n_old = len(table.nids)
    nids = table.nids + array("l", [r.nid for r in records])
    starts = table.starts + array("l", [r.start for r in records])
    levels = table.levels + array("l", [r.level for r in records])
    tags = table.tags + array("l", [r.tag_sym for r in records])
    docs = table.docs + array("l", [doc_id]) * len(records)
    ends = array("l", table.ends)  # copied: the root's entry may change
    if root_update is not None:
        root_row = bisect_left(table.starts, root_update.start)
        if (
            root_row >= n_old
            or table.starts[root_row] != root_update.start
            or table.nids[root_row] != root_update.nid
        ):
            raise ValueError(
                f"root nid {root_update.nid} not present in the columnar table"
            )
        ends[root_row] = root_update.end
    ends.extend(r.end for r in records)

    new_by_tag: dict[int, list[int]] = {}
    for offset, record in enumerate(records):
        new_by_tag.setdefault(record.tag_sym, []).append(n_old + offset)
    tag_rows = array("l")
    tag_starts = array("l")
    tag_ends = array("l")
    tag_levels = array("l")
    tag_dir: dict[int, tuple[int, int]] = {}
    for tag in sorted(set(table.tag_dir) | set(new_by_tag)):
        lo = len(tag_rows)
        bounds = table.tag_dir.get(tag)
        if bounds is not None:
            olo, ohi = bounds
            tag_rows.extend(table.tag_rows[olo:ohi])
            tag_starts.extend(table.tag_starts[olo:ohi])
            tag_ends.extend(table.tag_ends[olo:ohi])
            tag_levels.extend(table.tag_levels[olo:ohi])
        for row in new_by_tag.get(tag, ()):
            tag_rows.append(row)
            tag_starts.append(starts[row])
            tag_ends.append(ends[row])
            tag_levels.append(levels[row])
        tag_dir[tag] = (lo, len(tag_rows))
    if root_update is not None:
        lo, hi = tag_dir[root_update.tag_sym]
        pos = bisect_left(tag_starts, root_update.start, lo, hi)
        tag_ends[pos] = root_update.end

    new = ColumnarTable.__new__(ColumnarTable)
    new.generation = generation
    new.nids = nids
    new.starts = starts
    new.ends = ends
    new.levels = levels
    new.tags = tags
    new.docs = docs
    new.tag_rows = tag_rows
    new.tag_starts = tag_starts
    new.tag_ends = tag_ends
    new.tag_levels = tag_levels
    new.tag_dir = tag_dir
    new._labels = [None] * len(nids)
    _GLOBAL_STATS.extends += 1
    return new
