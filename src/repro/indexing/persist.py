"""Index persistence: tag and value indexes in their own page file.

TIMBER's Index Manager stores indexes through Shore (Fig. 12); here the
two indexes serialize into ``indexes.pages`` — the same slotted-page /
checksum machinery as the data file — so reopening a database directory
skips the full-store rebuild scan.

Format: a header record carrying a *store fingerprint* (next nid, next
label, document count), then posting records.  Large posting lists are
chunked across records.  Record layouts (big-endian):

=========  ==========================================================
kind 0x00  header: ``next_nid u32 | next_label u32 | n_docs u32``
kind 0x01  tag chunk: ``tag_sym u32 | n u16 | n x label``
kind 0x02  value chunk: ``tag_sym u32 | len u16 | content utf-8 |
           n u16 | n x label``
kind 0x03  columnar chunk: ``n u16 | n x row`` (rows in table order)
kind 0x04  statistics chunk: ``n u16 | n x stat``
=========  ==========================================================

where ``label`` is ``nid u32 | start u32 | end u32 | level u16`` and
``row`` is ``nid u32 | start u32 | end u32 | level u16 | tag u32 |
doc u16`` — one row of the columnar node table
(:mod:`repro.indexing.columnar`).  Columnar chunks are written only
when the manager holds a table for the current generation; snapshots
without them simply leave the table to a lazy rebuild on first query.

``stat`` is ``tag_sym u32 | count u32 | distinct u32 | min_level u16 |
max_level u16 | subtree_total u64`` — one per-tag row of the optimizer
statistics (:mod:`repro.indexing.statistics`).  Like the columnar
chunks, statistics are written when the manager holds them for the
current generation and left to a lazy rebuild otherwise; on load they
are stamped with the store's current generation (the statistics
*version*), exactly as the columnar table is.

On load, a missing file, a corrupt page, or a fingerprint mismatch all
fall back to a rebuild — persistence is a cache, never a source of
truth the data file could contradict.
"""

from __future__ import annotations

import os
import struct

from ..errors import ReproError
from ..storage.disk import DiskManager
from ..storage.page import Page
from .labels import NodeLabel

INDEX_FILE = "indexes.pages"

_HEADER = struct.Struct(">BIII")
_TAG_CHUNK = struct.Struct(">BIH")
_VALUE_CHUNK_PREFIX = struct.Struct(">BIH")
_LABEL = struct.Struct(">IIIH")
_COUNT = struct.Struct(">H")

_KIND_HEADER = 0x00
_KIND_TAG = 0x01
_KIND_VALUE = 0x02
_KIND_COLUMNAR = 0x03
_KIND_STATS = 0x04

_COLUMNAR_PREFIX = struct.Struct(">BH")
_ROW = struct.Struct(">IIIHIH")
_STATS_PREFIX = struct.Struct(">BH")
_STAT_ROW = struct.Struct(">IIIHHQ")

# Labels per chunk record, sized to keep records well under a page.
CHUNK_LABELS = 400
# Columnar rows per chunk (20 bytes each; well under the 8 KiB page).
CHUNK_ROWS = 300
# Statistics rows per chunk (24 bytes each).
CHUNK_STATS = 200


def fingerprint_of(meta) -> tuple[int, int, int]:
    """The store fingerprint a snapshot must match to be fresh."""
    return (meta.next_nid, meta.next_label, len(meta.documents))


def _fingerprint(manager) -> tuple[int, int, int]:
    return fingerprint_of(manager.store.meta)


def snapshot_is_fresh(meta, directory: str) -> bool:
    """Whether the persisted snapshot in ``directory`` matches ``meta``.

    An empty catalog with no snapshot counts as fresh — there is
    nothing to rebuild.
    """
    snapshot = read_fingerprint(directory)
    if snapshot is None:
        return not meta.documents
    return snapshot == fingerprint_of(meta)


def read_fingerprint(directory: str) -> tuple[int, int, int] | None:
    """The fingerprint stored in ``directory/indexes.pages``, or
    ``None`` when the file is missing or unreadable.  Reads only the
    first page — used by ``verify`` to report index freshness without
    deserializing the snapshot."""
    path = os.path.join(directory, INDEX_FILE)
    if not os.path.exists(path):
        return None
    try:
        disk = DiskManager(path)
    except ReproError:
        return None
    try:
        if disk.n_pages == 0:
            return None
        for raw in disk.read_page(0).records():
            if raw[0] == _KIND_HEADER:
                _, next_nid, next_label, n_docs = _HEADER.unpack_from(raw, 0)
                return (next_nid, next_label, n_docs)
        return None
    except ReproError:
        return None
    finally:
        disk.close()


def _pack_labels(labels: list[NodeLabel]) -> bytes:
    return b"".join(
        _LABEL.pack(label.nid, label.start, label.end, label.level) for label in labels
    )


def _unpack_labels(raw: bytes, offset: int, count: int) -> tuple[list[NodeLabel], int]:
    labels = []
    for _ in range(count):
        nid, start, end, level = _LABEL.unpack_from(raw, offset)
        offset += _LABEL.size
        labels.append(NodeLabel(nid, start, end, level))
    return labels, offset


def save_indexes(manager, directory: str) -> None:
    """Serialize the manager's indexes into ``directory/indexes.pages``."""
    path = os.path.join(directory, INDEX_FILE)
    tmp = path + ".tmp"
    if os.path.exists(tmp):
        os.remove(tmp)
    disk = DiskManager(tmp)
    try:
        writer = _PageWriter(disk)
        next_nid, next_label, n_docs = _fingerprint(manager)
        writer.add(_HEADER.pack(_KIND_HEADER, next_nid, next_label, n_docs))

        for tag_sym in manager.tag_index.tags():
            labels = manager.tag_index.labels(tag_sym)
            for start in range(0, len(labels), CHUNK_LABELS):
                chunk = labels[start : start + CHUNK_LABELS]
                writer.add(
                    _TAG_CHUNK.pack(_KIND_TAG, tag_sym, len(chunk)) + _pack_labels(chunk)
                )

        for key, postings in manager.value_index._tree.items():
            tag_sym, content = key
            payload = content.encode("utf-8")
            if len(payload) > 0xFFFF:
                payload = payload[:0xFFFF]  # clamp absurd keys defensively
            for start in range(0, len(postings), CHUNK_LABELS):
                chunk = postings[start : start + CHUNK_LABELS]
                writer.add(
                    _VALUE_CHUNK_PREFIX.pack(_KIND_VALUE, tag_sym, len(payload))
                    + payload
                    + _COUNT.pack(len(chunk))
                    + _pack_labels(chunk)
                )

        # The columnar node table, when fresh for this fingerprint.
        table = getattr(manager, "columnar_if_fresh", lambda: None)()
        if table is not None:
            pack = _ROW.pack
            for start in range(0, table.n_rows, CHUNK_ROWS):
                stop = min(start + CHUNK_ROWS, table.n_rows)
                writer.add(
                    _COLUMNAR_PREFIX.pack(_KIND_COLUMNAR, stop - start)
                    + b"".join(
                        pack(
                            table.nids[row],
                            table.starts[row],
                            table.ends[row],
                            table.levels[row],
                            table.tags[row],
                            table.docs[row],
                        )
                        for row in range(start, stop)
                    )
                )

        # The optimizer statistics, when fresh for this fingerprint.
        stats = getattr(manager, "statistics_if_fresh", lambda: None)()
        if stats is not None:
            rows = stats.rows()
            for start in range(0, len(rows), CHUNK_STATS):
                chunk = rows[start : start + CHUNK_STATS]
                writer.add(
                    _STATS_PREFIX.pack(_KIND_STATS, len(chunk))
                    + b"".join(
                        _STAT_ROW.pack(
                            row.tag_sym,
                            row.count,
                            row.distinct_values,
                            row.min_level,
                            row.max_level,
                            row.total_subtree_nodes,
                        )
                        for row in chunk
                    )
                )
        writer.flush()
    finally:
        disk.close()  # flushes and fsyncs the staged file
    os.replace(tmp, path)
    from ..storage.journal import fsync_directory

    fsync_directory(directory)


def load_indexes(manager, directory: str) -> bool:
    """Load indexes from ``directory``; returns False when a rebuild is
    needed (missing/corrupt file or stale fingerprint)."""
    path = os.path.join(directory, INDEX_FILE)
    if not os.path.exists(path):
        return False
    from array import array

    from .tag_index import TagIndex
    from .value_index import ValueIndex

    tag_index = TagIndex()
    value_index = ValueIndex()
    row_nids = array("l")
    row_starts = array("l")
    row_ends = array("l")
    row_levels = array("l")
    row_tags = array("l")
    row_docs = array("l")
    columnar_seen = False
    stat_rows: list = []
    try:
        disk = DiskManager(path)
    except ReproError:
        return False
    try:
        header_seen = False
        for page_id in range(disk.n_pages):
            page = disk.read_page(page_id)
            for raw in page.records():
                kind = raw[0]
                if kind == _KIND_HEADER:
                    _, next_nid, next_label, n_docs = _HEADER.unpack_from(raw, 0)
                    if (next_nid, next_label, n_docs) != _fingerprint(manager):
                        return False  # stale snapshot: rebuild
                    header_seen = True
                elif kind == _KIND_TAG:
                    _, tag_sym, count = _TAG_CHUNK.unpack_from(raw, 0)
                    labels, _ = _unpack_labels(raw, _TAG_CHUNK.size, count)
                    for label in labels:
                        tag_index.add(tag_sym, label)
                elif kind == _KIND_VALUE:
                    _, tag_sym, length = _VALUE_CHUNK_PREFIX.unpack_from(raw, 0)
                    offset = _VALUE_CHUNK_PREFIX.size
                    content = raw[offset : offset + length].decode("utf-8")
                    offset += length
                    (count,) = _COUNT.unpack_from(raw, offset)
                    offset += _COUNT.size
                    labels, _ = _unpack_labels(raw, offset, count)
                    for label in labels:
                        value_index.add(tag_sym, content, label)
                elif kind == _KIND_COLUMNAR:
                    columnar_seen = True
                    _, count = _COLUMNAR_PREFIX.unpack_from(raw, 0)
                    offset = _COLUMNAR_PREFIX.size
                    for _ in range(count):
                        nid, start, end, level, tag_sym, doc = _ROW.unpack_from(
                            raw, offset
                        )
                        offset += _ROW.size
                        row_nids.append(nid)
                        row_starts.append(start)
                        row_ends.append(end)
                        row_levels.append(level)
                        row_tags.append(tag_sym)
                        row_docs.append(doc)
                elif kind == _KIND_STATS:
                    from .statistics import TagStatistics

                    _, count = _STATS_PREFIX.unpack_from(raw, 0)
                    offset = _STATS_PREFIX.size
                    for _ in range(count):
                        (
                            tag_sym,
                            tag_count,
                            distinct,
                            min_level,
                            max_level,
                            subtree_total,
                        ) = _STAT_ROW.unpack_from(raw, offset)
                        offset += _STAT_ROW.size
                        stat_rows.append(
                            TagStatistics(
                                tag_sym=tag_sym,
                                count=tag_count,
                                distinct_values=distinct,
                                min_level=min_level,
                                max_level=max_level,
                                total_subtree_nodes=subtree_total,
                            )
                        )
                else:
                    return False  # unknown record kind: treat as corrupt
        if not header_seen:
            return False
    except ReproError:
        return False
    finally:
        disk.close()

    manager.tag_index = tag_index
    manager.value_index = value_index
    manager._built = True
    if columnar_seen:
        from .columnar import ColumnarTable

        manager._columnar = ColumnarTable(
            row_nids,
            row_starts,
            row_ends,
            row_levels,
            row_tags,
            row_docs,
            generation=manager.store.generation,
        )
    else:
        manager._columnar = None
    if stat_rows:
        from .statistics import statistics_from_rows

        manager._statistics = statistics_from_rows(
            stat_rows, generation=manager.store.generation
        )
    else:
        manager._statistics = None
    return True


class _PageWriter:
    """Append records across pages, allocating as needed."""

    def __init__(self, disk: DiskManager):
        self.disk = disk
        self._page: Page | None = None

    def add(self, payload: bytes) -> None:
        if self._page is None or len(payload) > self._page.free_space():
            self.flush()
            self._page = Page(self.disk.allocate_page())
            if len(payload) > self._page.free_space():
                raise ReproError("index record exceeds page capacity")
        self._page.insert_record(payload)

    def flush(self) -> None:
        if self._page is not None:
            self.disk.write_page(self._page)
            self._page = None
