"""Value index: (tag symbol, content) -> node labels, over a B+tree.

Sec. 5.3's footnote discusses the two XML-specific complications of
value indexes, and this implementation models both:

* **type heterogeneity** — one index covers many element types, so the
  key is the pair ``(tag_sym, content)``; a lookup scoped to a tag uses
  a range scan over that tag's key region;
* the index returns **the identifier of the node with the value**, not
  the related node one usually wants to group — navigation from value
  node to, e.g., the enclosing article stays the caller's job, exactly
  as the paper notes.

``distinct_values(tag)`` supports the ``distinct-values(...)`` XQuery
builtin: an ordered scan of one tag's region yields each distinct
content once, with its posting list.
"""

from __future__ import annotations

from typing import Iterator

from .btree import BPlusTree
from .labels import NodeLabel


class ValueIndex:
    """B+tree-backed content index keyed by ``(tag_sym, content)``."""

    def __init__(self, order: int = 64):
        self._tree = BPlusTree(order=order)
        self.lookups = 0
        self.postings_served = 0

    def add(self, tag_sym: int, content: str, label: NodeLabel) -> None:
        self._tree.insert((tag_sym, content), label)

    def contains(self, tag_sym: int, content: str) -> bool:
        """Key-existence probe that charges no lookup counters (used by
        incremental statistics maintenance to spot new distinct values
        *before* inserting them)."""
        return (tag_sym, content) in self._tree

    def replace_label(
        self, tag_sym: int, content: str, old: NodeLabel, new: NodeLabel
    ) -> None:
        """Swap one posting in place (streaming ingest: the document
        root's ``end`` label advances at every batch commit)."""
        self._tree.remove((tag_sym, content), old)
        self._tree.insert((tag_sym, content), new)

    def labels(self, tag_sym: int, content: str) -> list[NodeLabel]:
        """All nodes with this tag whose content equals ``content``,
        in document order."""
        self.lookups += 1
        postings = self._tree.search((tag_sym, content))
        postings.sort(key=lambda label: label.start)
        self.postings_served += len(postings)
        return postings

    def distinct_values(self, tag_sym: int) -> Iterator[tuple[str, list[NodeLabel]]]:
        """Each distinct content of the tag, ascending, with postings."""
        self.lookups += 1
        # The key region of tag_sym is [(tag_sym, ""), (tag_sym+1, "")).
        for (sym, content), postings in self._tree.range_scan(lo=(tag_sym, "")):
            if sym != tag_sym:
                return
            postings.sort(key=lambda label: label.start)
            self.postings_served += len(postings)
            yield content, postings

    def n_keys(self) -> int:
        return len(self._tree)

    def n_entries(self) -> int:
        return self._tree.n_entries

    def check_invariants(self) -> None:
        self._tree.check_invariants()
