"""In-memory XML tree nodes.

The paper's data model (Sec. 2) treats an XML document as an ordered,
labelled tree whose edges represent element nesting.  :class:`XMLNode` is
the in-memory realization used throughout the library: parsed documents,
witness trees produced by pattern matching, and the structured output of
TAX operators (e.g. the ``tax_group_root`` trees of Sec. 3) are all built
from these nodes.

A node carries:

* ``tag`` — the element name (e.g. ``article``).  Synthetic tags produced
  by operators (``TAX_group_root``, ``TAX_prod_root``...) live in
  :mod:`repro.core.base`.
* ``content`` — the text content directly inside the element, or ``None``.
  The paper writes nodes such as ``author: Jack``; we model that as an
  ``author`` element whose ``content`` is ``"Jack"``.
* ``attributes`` — an ordered mapping of attribute name to string value.
* ``children`` — ordered sub-elements.
* ``nid`` — if this node mirrors a node persisted in a
  :class:`repro.storage.store.NodeStore`, the stored node id; otherwise
  ``None`` (a purely constructed node).  Operators use ``nid`` for
  identifier-only processing and late materialization (Sec. 5.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator


class XMLNode:
    """One element node of an ordered XML tree."""

    __slots__ = ("tag", "content", "attributes", "children", "parent", "nid")

    def __init__(
        self,
        tag: str,
        content: str | None = None,
        attributes: dict[str, str] | None = None,
        children: Iterable["XMLNode"] | None = None,
        nid: int | None = None,
    ):
        self.tag = tag
        self.content = content
        self.attributes: dict[str, str] = dict(attributes) if attributes else {}
        self.children: list[XMLNode] = []
        self.parent: XMLNode | None = None
        self.nid = nid
        if children:
            for child in children:
                self.append_child(child)

    # ------------------------------------------------------------------
    # Construction and structure edits
    # ------------------------------------------------------------------
    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the new last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def insert_child(self, index: int, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` at position ``index`` among the children."""
        child.parent = self
        self.children.insert(index, child)
        return child

    def add(self, tag: str, content: str | None = None, **attributes: str) -> "XMLNode":
        """Convenience: create a child node and return it (builder style)."""
        return self.append_child(XMLNode(tag, content, attributes or None))

    def remove_child(self, child: "XMLNode") -> None:
        """Detach ``child``; raises ``ValueError`` if it is not a child."""
        self.children.remove(child)
        child.parent = None

    def child_index(self) -> int:
        """Position of this node among its siblings (0-based).

        Raises ``ValueError`` for a root node.
        """
        if self.parent is None:
            raise ValueError("root node has no sibling position")
        for i, sibling in enumerate(self.parent.children):
            if sibling is self:
                return i
        raise ValueError("node not found among its parent's children")

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter(self) -> Iterator["XMLNode"]:
        """Pre-order (document order) traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["XMLNode"]:
        """Post-order traversal of this subtree (children before parent)."""
        # Iterative two-stack post-order keeps deep documents from
        # exhausting the recursion limit.
        stack: list[tuple[XMLNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """All proper descendants in document order."""
        it = self.iter()
        next(it)  # skip self
        return it

    def ancestors(self) -> Iterator["XMLNode"]:
        """Ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find(self, tag: str) -> "XMLNode | None":
        """First child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["XMLNode"]:
        """All children with the given tag, in order."""
        return [child for child in self.children if child.tag == tag]

    def find_descendants(self, tag: str) -> list["XMLNode"]:
        """All descendants-or-self with the given tag, in document order."""
        return [node for node in self.iter() if node.tag == tag]

    def walk(self, visit: Callable[["XMLNode"], None]) -> None:
        """Apply ``visit`` to every node of the subtree in document order."""
        for node in self.iter():
            visit(node)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def subtree_size(self) -> int:
        """Number of nodes in this subtree, including self."""
        return sum(1 for _ in self.iter())

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    def height(self) -> int:
        """Longest downward path length from this node (leaf has height 0)."""
        heights: dict[int, int] = {}
        for node in self.iter_postorder():
            if not node.children:
                heights[id(node)] = 0
            else:
                heights[id(node)] = 1 + max(heights[id(c)] for c in node.children)
        return heights[id(self)]

    def is_leaf(self) -> bool:
        return not self.children

    def root(self) -> "XMLNode":
        """The root of the tree this node belongs to."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    # ------------------------------------------------------------------
    # Copying and comparison
    # ------------------------------------------------------------------
    def deep_copy(self) -> "XMLNode":
        """Structural copy of the subtree.  ``nid`` values are preserved so
        copies still refer to the same stored nodes."""
        clone = XMLNode(self.tag, self.content, dict(self.attributes) or None, nid=self.nid)
        stack = [(self, clone)]
        while stack:
            source, target = stack.pop()
            for child in source.children:
                child_clone = XMLNode(
                    child.tag, child.content, dict(child.attributes) or None, nid=child.nid
                )
                target.append_child(child_clone)
                stack.append((child, child_clone))
        return clone

    def structurally_equal(self, other: "XMLNode") -> bool:
        """Deep equality on tag, content, attributes, and child order.

        ``nid`` is deliberately ignored: two trees with identical shape and
        values are equal regardless of storage provenance.
        """
        pairs = [(self, other)]
        while pairs:
            a, b = pairs.pop()
            if a.tag != b.tag or a.content != b.content or a.attributes != b.attributes:
                return False
            if len(a.children) != len(b.children):
                return False
            pairs.extend(zip(a.children, b.children))
        return True

    def canonical_key(self) -> tuple:
        """A hashable key capturing the subtree's shape and values.

        Used for value-based duplicate elimination over constructed trees.
        """
        return (
            self.tag,
            self.content,
            tuple(sorted(self.attributes.items())),
            tuple(child.canonical_key() for child in self.children),
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def sketch(self, indent: int = 0) -> str:
        """Compact indented text rendering, e.g. for test failure output."""
        label = self.tag
        if self.content is not None:
            label += f": {self.content}"
        if self.attributes:
            attrs = " ".join(f"{k}={v!r}" for k, v in self.attributes.items())
            label += f" [{attrs}]"
        lines = ["  " * indent + label]
        lines.extend(child.sketch(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = self.subtree_size()
        content = f" content={self.content!r}" if self.content is not None else ""
        return f"<XMLNode tag={self.tag!r}{content} nodes={n}>"


def element(tag: str, content: str | None = None, *children: XMLNode, **attributes: str) -> XMLNode:
    """Functional tree builder used heavily in tests and examples.

    >>> t = element("article", None,
    ...             element("title", "Querying XML"),
    ...             element("author", "Jack"))
    >>> [c.tag for c in t.children]
    ['title', 'author']
    """
    return XMLNode(tag, content, attributes or None, children)
