"""XML data model substrate: ordered labelled trees, parsing, serialization.

This package is S1 of DESIGN.md — the tree data model the whole TIMBER
reproduction stands on.
"""

from .diff import Difference, assert_collections_equal, diff_collections, first_difference
from .node import XMLNode, element
from .parse import parse_document, parse_file
from .serialize import serialize, write_file
from .tree import Collection, DataTree

__all__ = [
    "Difference",
    "assert_collections_equal",
    "diff_collections",
    "first_difference",
    "XMLNode",
    "element",
    "parse_document",
    "parse_file",
    "serialize",
    "write_file",
    "Collection",
    "DataTree",
]
