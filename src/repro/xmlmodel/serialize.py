"""Serialization of :class:`~repro.xmlmodel.node.XMLNode` trees to XML text.

The serializer is the inverse of :mod:`repro.xmlmodel.parse` for the
library's content model: ``serialize(parse_document(s))`` re-parses to a
structurally equal tree (a property the test suite checks with
hypothesis-generated trees).
"""

from __future__ import annotations

from .node import XMLNode

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    out = value
    for raw, entity in _TEXT_ESCAPES.items():
        out = out.replace(raw, entity)
    return out


def escape_attribute(value: str) -> str:
    """Escape an attribute value for a double-quoted attribute."""
    out = value
    for raw, entity in _ATTR_ESCAPES.items():
        out = out.replace(raw, entity)
    return out


def _open_tag(node: XMLNode) -> str:
    parts = [node.tag]
    parts.extend(
        f'{name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    return " ".join(parts)


def serialize(node: XMLNode, indent: str | None = "  ") -> str:
    """Render the subtree rooted at ``node`` as XML text.

    With ``indent=None`` the output is compact (single line); otherwise
    child elements are placed on their own indented lines.  Nodes that
    carry both text content and children emit the text first, matching
    the parser's concatenation rule.
    """
    pieces: list[str] = []
    _serialize_into(node, pieces, 0, indent)
    return "".join(pieces)


def _serialize_into(node: XMLNode, out: list[str], level: int, indent: str | None) -> None:
    pad = indent * level if indent else ""
    newline = "\n" if indent else ""
    open_tag = _open_tag(node)

    if not node.children and node.content is None:
        out.append(f"{pad}<{open_tag}/>{newline}")
        return

    if not node.children:
        text = escape_text(node.content or "")
        out.append(f"{pad}<{open_tag}>{text}</{node.tag}>{newline}")
        return

    out.append(f"{pad}<{open_tag}>{newline}")
    if node.content is not None:
        inner_pad = indent * (level + 1) if indent else ""
        out.append(f"{inner_pad}{escape_text(node.content)}{newline}")
    for child in node.children:
        _serialize_into(child, out, level + 1, indent)
    out.append(f"{pad}</{node.tag}>{newline}")


def write_file(node: XMLNode, path: str, indent: str | None = "  ") -> None:
    """Serialize ``node`` to ``path`` with an XML declaration."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        handle.write(serialize(node, indent=indent))
        if indent is None:
            handle.write("\n")
