"""Data trees and collections — the carriers of the TAX algebra.

TAX (Sec. 2 of the paper) is a *bulk* algebra: every operator takes one or
more **collections of trees** as input and produces a collection of trees
as output, giving composability and closure.  :class:`DataTree` wraps one
rooted tree together with provenance bookkeeping (which stored document,
which source tree it was derived from), and :class:`Collection` is the
ordered multiset of data trees that operators consume and produce.

Order matters in XML: both the order of trees within a collection and the
order of nodes within a tree are preserved by all operators, as the paper
requires ("the relative order among nodes in the input is preserved in
the output").
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .node import XMLNode


class DataTree:
    """One rooted data tree plus provenance.

    Attributes
    ----------
    root:
        The root :class:`XMLNode` of the tree.
    doc_id:
        Identifier of the stored document this tree was derived from, or
        ``None`` for purely constructed trees.
    source_root_nid:
        Stored node id of the *source tree* root this tree was obtained
        from, when applicable.  The groupby operator (Sec. 3) groups
        *source trees* — "corresponding to each witness tree T_i of P, we
        keep track of the source tree I_i from which it was obtained" —
        and this field is that bookkeeping.
    """

    __slots__ = ("root", "doc_id", "source_root_nid")

    def __init__(
        self,
        root: XMLNode,
        doc_id: int | None = None,
        source_root_nid: int | None = None,
    ):
        self.root = root
        self.doc_id = doc_id
        self.source_root_nid = source_root_nid

    def size(self) -> int:
        """Number of nodes in the tree."""
        return self.root.subtree_size()

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order."""
        return self.root.iter()

    def copy(self) -> "DataTree":
        return DataTree(self.root.deep_copy(), self.doc_id, self.source_root_nid)

    def structurally_equal(self, other: "DataTree") -> bool:
        return self.root.structurally_equal(other.root)

    def sketch(self) -> str:
        return self.root.sketch()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataTree root={self.root.tag!r} nodes={self.size()} doc={self.doc_id}>"


class Collection:
    """An ordered collection of :class:`DataTree` — TAX operand/result.

    The collection is a *sequence*, not a set: XML results are ordered and
    duplicates are meaningful until an explicit duplicate elimination.
    """

    __slots__ = ("trees", "name")

    def __init__(self, trees: Iterable[DataTree] | None = None, name: str = ""):
        self.trees: list[DataTree] = list(trees) if trees is not None else []
        self.name = name

    # -- sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.trees)

    def __iter__(self) -> Iterator[DataTree]:
        return iter(self.trees)

    def __getitem__(self, index: int) -> DataTree:
        return self.trees[index]

    def append(self, tree: DataTree) -> None:
        self.trees.append(tree)

    def extend(self, trees: Iterable[DataTree]) -> None:
        self.trees.extend(trees)

    # -- conveniences -----------------------------------------------------
    @classmethod
    def from_roots(cls, roots: Iterable[XMLNode], name: str = "") -> "Collection":
        """Wrap bare root nodes in data trees."""
        return cls([DataTree(root) for root in roots], name=name)

    def roots(self) -> list[XMLNode]:
        return [tree.root for tree in self.trees]

    def total_nodes(self) -> int:
        """Sum of node counts over all trees."""
        return sum(tree.size() for tree in self.trees)

    def map_trees(self, fn: Callable[[DataTree], DataTree]) -> "Collection":
        """New collection with ``fn`` applied to each tree, order kept."""
        return Collection([fn(tree) for tree in self.trees], name=self.name)

    def filter_trees(self, predicate: Callable[[DataTree], bool]) -> "Collection":
        """New collection with only the trees satisfying ``predicate``."""
        return Collection(
            [tree for tree in self.trees if predicate(tree)], name=self.name
        )

    def copy(self) -> "Collection":
        """Deep copy: operator implementations that mutate trees call this
        first so that inputs are never destroyed (closure discipline)."""
        return Collection([tree.copy() for tree in self.trees], name=self.name)

    def structurally_equal(self, other: "Collection") -> bool:
        """Pairwise deep equality, order-sensitive."""
        if len(self) != len(other):
            return False
        return all(a.structurally_equal(b) for a, b in zip(self.trees, other.trees))

    def sketch(self) -> str:
        """Readable rendering of every tree, for debugging and tests."""
        parts = []
        for i, tree in enumerate(self.trees):
            parts.append(f"--- tree {i} ---")
            parts.append(tree.sketch())
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return f"<Collection{label} trees={len(self.trees)}>"
