"""Axis navigation helpers over in-memory trees.

These are the building blocks the *direct* XQuery interpreter
(:mod:`repro.query.interpreter`) uses to evaluate path expressions
tuple-at-a-time — the nested-loops baseline of the paper's Sec. 6.  The
algebraic engine does not use them; it navigates stored nodes through
node labels and indexes instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .node import XMLNode


def child_step(nodes: Iterable[XMLNode], tag: str | None) -> list[XMLNode]:
    """``/tag`` step: children of each context node, document order.

    ``tag=None`` means the wildcard ``*``.
    """
    out: list[XMLNode] = []
    for node in nodes:
        if tag is None:
            out.extend(node.children)
        else:
            out.extend(child for child in node.children if child.tag == tag)
    return out


def descendant_step(nodes: Iterable[XMLNode], tag: str | None) -> list[XMLNode]:
    """``//tag`` step: proper descendants of each context node.

    Duplicates can arise when context nodes are nested; they are removed
    while preserving document order, matching XPath node-set semantics.
    """
    out: list[XMLNode] = []
    seen: set[int] = set()
    for node in nodes:
        for descendant in node.descendants():
            if tag is not None and descendant.tag != tag:
                continue
            if id(descendant) in seen:
                continue
            seen.add(id(descendant))
            out.append(descendant)
    return out


def descendant_or_self_step(nodes: Iterable[XMLNode], tag: str | None) -> list[XMLNode]:
    """Like :func:`descendant_step` but including the context nodes."""
    out: list[XMLNode] = []
    seen: set[int] = set()
    for node in nodes:
        for descendant in node.iter():
            if tag is not None and descendant.tag != tag:
                continue
            if id(descendant) in seen:
                continue
            seen.add(id(descendant))
            out.append(descendant)
    return out


def attribute_step(nodes: Iterable[XMLNode], name: str) -> list[str]:
    """``/@name`` step: attribute values present on the context nodes."""
    return [node.attributes[name] for node in nodes if name in node.attributes]


def string_value(node: XMLNode) -> str:
    """The XPath string value: concatenated text of the whole subtree."""
    parts: list[str] = []
    for descendant in node.iter():
        if descendant.content is not None:
            parts.append(descendant.content)
    return "".join(parts)


def atomic_value(node: XMLNode) -> str:
    """The comparison value used throughout the library.

    For leaf-ish elements this is the node's own content; when the node
    has no direct content the full string value is used, so that
    ``author = "Jack"`` works whether ``author`` holds text directly or
    through a nested element.
    """
    if node.content is not None:
        return node.content
    return string_value(node)


def iter_documents_order(nodes: Iterable[XMLNode]) -> Iterator[XMLNode]:
    """Yield nodes sorted in document order of their host tree.

    Works only for nodes of one tree; used by tests to validate matcher
    output ordering.
    """
    positions: dict[int, int] = {}

    roots = {id(node.root()): node.root() for node in nodes}
    counter = 0
    for root in roots.values():
        for node in root.iter():
            positions[id(node)] = counter
            counter += 1
    yield from sorted(nodes, key=lambda node: positions[id(node)])
