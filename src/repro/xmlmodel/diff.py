"""Structural diff between trees — a debugging aid for result comparison.

``structurally_equal`` answers yes/no; when engines disagree (or a test
fails) you want to know *where*.  :func:`first_difference` walks two
trees in lockstep and reports the first divergence with its path, and
:func:`diff_collections` does the same across whole collections.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import XMLNode
from .tree import Collection


@dataclass(frozen=True)
class Difference:
    """One structural divergence between two trees."""

    path: str  # e.g. "doc_root/article[1]/author[0]"
    kind: str  # "tag" | "content" | "attributes" | "child-count"
    left: object
    right: object

    def render(self) -> str:
        return f"at {self.path}: {self.kind} differs ({self.left!r} vs {self.right!r})"


def first_difference(left: XMLNode, right: XMLNode, path: str = "") -> Difference | None:
    """The first divergence in a preorder walk, or ``None`` if equal."""
    here = path or left.tag
    if left.tag != right.tag:
        return Difference(here, "tag", left.tag, right.tag)
    if left.content != right.content:
        return Difference(here, "content", left.content, right.content)
    if left.attributes != right.attributes:
        return Difference(here, "attributes", dict(left.attributes), dict(right.attributes))
    if len(left.children) != len(right.children):
        return Difference(
            here,
            "child-count",
            [c.tag for c in left.children],
            [c.tag for c in right.children],
        )
    # Index children per tag so paths read like XPath steps.
    tag_counters: dict[str, int] = {}
    for left_child, right_child in zip(left.children, right.children):
        index = tag_counters.get(left_child.tag, 0)
        tag_counters[left_child.tag] = index + 1
        child_path = f"{here}/{left_child.tag}[{index}]"
        found = first_difference(left_child, right_child, child_path)
        if found is not None:
            return found
    return None


def diff_collections(left: Collection, right: Collection) -> str | None:
    """Readable first-difference report across two collections, or
    ``None`` when they are structurally equal."""
    if len(left) != len(right):
        return (
            f"collection sizes differ: {len(left)} vs {len(right)} trees"
        )
    for index, (left_tree, right_tree) in enumerate(zip(left, right)):
        found = first_difference(left_tree.root, right_tree.root)
        if found is not None:
            return f"tree {index}: {found.render()}"
    return None


def assert_collections_equal(left: Collection, right: Collection) -> None:
    """Raise ``AssertionError`` with a located message on divergence."""
    report = diff_collections(left, right)
    if report is not None:
        raise AssertionError(report)
