"""A from-scratch XML parser producing :class:`~repro.xmlmodel.node.XMLNode` trees.

The library does not depend on ``xml.etree``: the loader below implements
the subset of XML 1.0 that database documents (DBLP-style) use —
elements, attributes (single- or double-quoted), character data, the five
predefined entities plus decimal/hex character references, comments,
CDATA sections, processing instructions, and an optional XML declaration
and DOCTYPE line (both skipped).

Text handling follows the library's simplified content model: all
character data directly inside an element is concatenated (whitespace
between child elements is dropped when the element has children —
"element content" in XML terms) and stored as the node's ``content``.
This mirrors how the paper draws nodes such as ``author: Jack``.
"""

from __future__ import annotations

from ..errors import XMLParseError
from .node import XMLNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        index = self.pos if pos is None else pos
        prefix = self.text[:index]
        line = prefix.count("\n") + 1
        last_newline = prefix.rfind("\n")
        column = index - last_newline
        return line, column

    def error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line, column)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected a name")
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start : self.pos]

    def read_until(self, token: str, what: str) -> str:
        """Consume and return text up to (excluding) ``token``; consume it."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}: missing {token!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk


def _decode_entities(raw: str, scanner: _Scanner, at: int) -> str:
    """Expand entity and character references in character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference", at)
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", at) from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", at) from None
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", at)
        i = end + 1
    return "".join(out)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip whitespace, comments, PIs, XML declaration, and DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
        elif scanner.startswith("<!DOCTYPE"):
            # Consume a simple (non-internal-subset) DOCTYPE declaration.
            scanner.advance(len("<!DOCTYPE"))
            depth = 1
            while depth > 0:
                if scanner.at_end():
                    raise scanner.error("unterminated DOCTYPE")
                ch = scanner.peek()
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
                scanner.advance()
        else:
            return


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or scanner.at_end():
            return attributes
        at = scanner.pos
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote, "attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}", at)
        attributes[name] = _decode_entities(raw, scanner, at)


def parse_document(text: str) -> XMLNode:
    """Parse an XML document string and return its root :class:`XMLNode`.

    Raises :class:`~repro.errors.XMLParseError` with line/column info on
    malformed input.
    """
    scanner = _Scanner(text)
    _skip_misc(scanner)
    if scanner.at_end() or scanner.peek() != "<":
        raise scanner.error("expected a root element")

    root: XMLNode | None = None
    # Stack of (node, text_chunks) under construction.
    stack: list[tuple[XMLNode, list[str]]] = []

    while True:
        if scanner.at_end():
            if stack:
                raise scanner.error(f"unclosed element <{stack[-1][0].tag}>")
            break

        if scanner.peek() == "<":
            if scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<![CDATA["):
                if not stack:
                    raise scanner.error("CDATA outside the root element")
                scanner.advance(9)
                stack[-1][1].append(scanner.read_until("]]>", "CDATA section"))
            elif scanner.startswith("<?"):
                scanner.advance(2)
                scanner.read_until("?>", "processing instruction")
            elif scanner.startswith("</"):
                scanner.advance(2)
                at = scanner.pos
                name = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
                if not stack:
                    raise scanner.error(f"unexpected closing tag </{name}>", at)
                node, chunks = stack.pop()
                if node.tag != name:
                    raise scanner.error(
                        f"mismatched closing tag </{name}> for <{node.tag}>", at
                    )
                _finish_node(node, chunks)
                if not stack:
                    root = node
                    _skip_misc(scanner)
                    if not scanner.at_end():
                        raise scanner.error("content after the root element")
                    break
            else:
                scanner.advance(1)
                name = scanner.read_name()
                attributes = _parse_attributes(scanner)
                node = XMLNode(name, attributes=attributes or None)
                if stack:
                    stack[-1][0].append_child(node)
                elif root is not None:
                    raise scanner.error("multiple root elements")
                scanner.skip_whitespace()
                if scanner.startswith("/>"):
                    scanner.advance(2)
                    if not stack:
                        root = node
                        _skip_misc(scanner)
                        if not scanner.at_end():
                            raise scanner.error("content after the root element")
                        break
                else:
                    scanner.expect(">")
                    stack.append((node, []))
        else:
            at = scanner.pos
            end = scanner.text.find("<", scanner.pos)
            if end < 0:
                end = scanner.length
            raw = scanner.text[scanner.pos : end]
            scanner.pos = end
            if stack:
                stack[-1][1].append(_decode_entities(raw, scanner, at))
            elif raw.strip():
                raise scanner.error("character data outside the root element", at)

    if root is None:
        raise scanner.error("no root element found")
    return root


def _finish_node(node: XMLNode, chunks: list[str]) -> None:
    """Assign collected character data to ``node.content``.

    Pure-whitespace data around child elements is treated as formatting
    and dropped; genuine text is stripped of the surrounding layout
    whitespace and concatenated.
    """
    text = "".join(chunks)
    if node.children:
        text = text.strip()
        node.content = text if text else None
    else:
        stripped = text.strip()
        node.content = stripped if stripped else None


def parse_file(path: str) -> XMLNode:
    """Parse the XML document stored at ``path``."""
    with open(path, encoding="utf-8") as handle:
        return parse_document(handle.read())
