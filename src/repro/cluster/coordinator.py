"""The scatter-gather cluster coordinator.

:class:`ClusterCoordinator` owns a :class:`~repro.cluster.shardmap.ShardMap`
and one :class:`~repro.cluster.client.ShardClient` pool per shard, and
distributes the paper's workload across N :class:`QueryService` shards
over the line protocol:

* **load** — the document is parsed locally, its root children split
  into contiguous slices (slice order == document order), and each
  slice shipped to its primary shard under the document's name and to
  replica shards under :func:`~repro.cluster.shardmap.replica_alias`.
  With ``batch_size=`` each slice travels over the chunked streaming
  ``LOAD`` mode instead of one buffered call, so every shard ingests
  its slice incrementally (journaled batches, online index
  maintenance, batch-granular generation bumps) and readers on that
  shard keep running between batches.
* **query** — :func:`~repro.cluster.merge.compile_merge` rewrites the
  query into a per-shard form; the coordinator fans the rewritten
  query out to every slice's holder concurrently, merges the rows
  (group union / concat / scalar sum), and re-applies ``SORTBY``.
  Whole (unpartitioned) documents route to their owner untouched.

Robustness (the point of this subsystem):

* **deadline budgets** — every fan-out runs under one clock; each
  shard call gets the *remaining* budget as its server-side timeout
  and socket read timeout, so a stalled shard cannot hold the
  coordinator past the caller's deadline.
* **hedged retry** — if a slice's first attempt is still silent after
  ``hedge_delay`` and the slice has replica holders, a second attempt
  races it against a replica (querying the replica's alias); first
  success wins.  A failed attempt immediately tries the next holder.
* **quarantine** — ``quarantine_threshold`` consecutive failures put a
  shard in quarantine: it is skipped during candidate selection until
  a lazy HEALTH probe (at most every ``probe_interval`` seconds)
  succeeds and re-admits it — the shard-level analogue of the
  client-level breaker's half-open probe.
* **typed degradation** — when some slices cannot be served at all the
  coordinator raises :class:`~repro.errors.PartialResultError` naming
  the missing shards, or (with ``allow_partial=True``) returns the
  merged survivors with ``missing_shards`` tagged on the result.  When
  *no* slice is served it raises
  :class:`~repro.errors.ShardUnavailableError`.

Everything observable lands in ``cluster_*`` counters.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..errors import (
    ClusterError,
    PartialResultError,
    RemoteError,
    ShardUnavailableError,
)
from ..query.ast import render
from ..query.database import Explanation
from ..query.parser import parse_query
from ..service.client import (
    BreakerConfig,
    HealthReport,
    RetryPolicy,
)
from ..observability.counters import CounterSnapshot
from ..xmlmodel.node import XMLNode
from ..xmlmodel.parse import parse_document
from ..xmlmodel.serialize import serialize
from ..xmlmodel.tree import Collection, DataTree
from .client import ShardClient
from .merge import (
    MergePlan,
    apply_sortby,
    compile_merge,
    document_names,
    merge_rows,
    rename_document,
)
from .shardmap import DocumentPlacement, ShardMap, SlicePlacement, replica_alias

#: Synthetic root the coordinator parses a shard's row payload under.
_ROWS_WRAPPER = "zrows"

#: Server-side ``ERR`` kinds a *different* holder might still serve
#: (capacity/deadline conditions).  Any other RemoteError means the
#: shard is healthy and the request itself is bad — that propagates to
#: the caller instead of triggering failover or quarantine.
_FAILOVER_REMOTE_KINDS = frozenset(
    {
        "QueryTimeoutError",
        "QueryCancelledError",
        "AdmissionError",
        "ServerOverloadedError",
        "ServerDrainingError",
    }
)


def _is_failover(error: Exception) -> bool:
    if isinstance(error, RemoteError):
        return error.kind in _FAILOVER_REMOTE_KINDS
    return True  # transport-level ClientError / deadline exhaustion


# ----------------------------------------------------------------------
# Configuration and state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Coordinator knobs (all robustness-related).

    ``replication`` > 1 stores each slice on that many shards and is
    what makes hedged retries useful; ``hedge_delay`` is how long the
    first attempt may stay silent before a replica is raced against
    it; ``quarantine_threshold`` consecutive shard failures trigger
    quarantine, probed for re-admission at most every
    ``probe_interval`` seconds.
    """

    replication: int = 1
    query_timeout: float = 30.0
    hedge_delay: float = 0.25
    quarantine_threshold: int = 3
    probe_interval: float = 0.5
    probe_timeout: float = 1.0
    connect_timeout: float = 5.0
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_attempts=2))
    breaker: BreakerConfig | None = None


class ShardState:
    """Mutable health-tracking for one shard (coordinator-side)."""

    __slots__ = ("shard", "quarantined", "consecutive_failures", "last_probe")

    def __init__(self, shard: int):
        self.shard = shard
        self.quarantined = False
        self.consecutive_failures = 0
        self.last_probe = 0.0


class ClusterStatistics:
    """Forward-only ``cluster_*`` counters (same snapshot-and-subtract
    contract as every other counter set in the repo)."""

    __slots__ = (
        "fanouts",
        "shard_calls",
        "shard_call_failures",
        "hedges",
        "hedge_wins",
        "quarantines",
        "readmissions",
        "probes",
        "probe_failures",
        "partial_results",
        "merges",
        "merged_groups",
        "loads",
        "load_slices",
        "load_batches",
        "_lock",
    )

    def __init__(self):
        for name in self.__slots__[:-1]:
            setattr(self, name, 0)
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                f"cluster_{name}": getattr(self, name)
                for name in self.__slots__[:-1]
            }


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ClusterResult:
    """A merged query result plus degradation metadata."""

    collection: Collection
    plan_kind: str  # "single" | "group" | "concat" | "scalar-count"
    elapsed_seconds: float
    missing_shards: frozenset[int] = frozenset()
    shards_used: frozenset[int] = frozenset()

    @property
    def partial(self) -> bool:
        return bool(self.missing_shards)

    def __len__(self) -> int:
        return len(self.collection)

    def to_xml(self, indent: str | None = "  ") -> str:
        joiner = "" if indent else "\n"
        return joiner.join(
            serialize(tree.root, indent=indent) for tree in self.collection
        )


@dataclass(frozen=True)
class ClusterHealth:
    """The aggregated HEALTH rollup."""

    status: str  # "ok" | "degraded" | "draining"
    shards: dict[int, HealthReport | None]
    quarantined: frozenset[int]

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class SliceLoad:
    slice_index: int
    shard: int
    nodes: int
    replicas: tuple[int, ...] = ()
    batches: int = 1


@dataclass(frozen=True)
class ClusterLoadReport:
    document: str
    slices: tuple[SliceLoad, ...]

    @property
    def nodes(self) -> int:
        return sum(piece.nodes for piece in self.slices)

    @property
    def batches(self) -> int:
        return sum(piece.batches for piece in self.slices)

    @property
    def partitioned(self) -> bool:
        return len(self.slices) > 1


@dataclass
class _Attempt:
    shard: int
    hedged: bool


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ClusterCoordinator:
    """Scatter-gather front end over N line-protocol shards."""

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        config: ClusterConfig | None = None,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if not endpoints:
            raise ClusterError("a cluster needs at least one shard endpoint")
        self.config = config or ClusterConfig()
        self.shard_map = ShardMap(
            len(endpoints), replication=self.config.replication
        )
        self.counters = ClusterStatistics()
        self._clock = clock
        self._sleep = sleep
        self._clients = [
            ShardClient(
                index,
                host,
                port,
                retry=self.config.retry,
                breaker=self.config.breaker,
                connect_timeout=self.config.connect_timeout,
                read_timeout=self.config.query_timeout,
            )
            for index, (host, port) in enumerate(endpoints)
        ]
        self._states = [ShardState(index) for index in range(len(endpoints))]
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(
        self,
        *,
        text: str | None = None,
        tree: XMLNode | None = None,
        path: str | None = None,
        name: str,
        slices: int | None = None,
        batch_size: int | None = None,
    ) -> ClusterLoadReport:
        """Partition a document across the shards.

        Exactly one of ``text``/``tree``/``path``.  ``slices=None``
        partitions one slice per shard; ``slices=1`` keeps the
        document whole on its hash owner.  ``batch_size`` switches
        each slice to the chunked streaming ``LOAD`` mode: the shard
        cuts the slice into journaled ingest batches of roughly that
        many nodes and commits them one by one, so readers on the
        shard interleave with the load instead of waiting for it.
        """
        sources = [s for s in (text, tree, path) if s is not None]
        if len(sources) != 1:
            raise ClusterError("load() needs exactly one of text=, tree=, path=")
        if path is not None:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        root = parse_document(text) if text is not None else tree
        assert root is not None
        count = self.shard_map.shards if slices is None else slices
        if not 1 <= count <= self.shard_map.shards:
            raise ClusterError(
                f"slices must be between 1 and {self.shard_map.shards}"
            )
        placement = self.shard_map.place(name, slices=count)
        pieces = _split(root, count)
        loaded: list[SliceLoad] = []
        for piece_root, slot in zip(pieces, placement.slices):
            payload = serialize(piece_root, indent=None)
            reply = self._load_to(
                slot.primary, payload, name, batch_size=batch_size
            )
            for replica in slot.replicas:
                self._load_to(
                    replica,
                    payload,
                    replica_alias(name, slot.index),
                    batch_size=batch_size,
                )
            self.counters.add("load_slices")
            batches = int(reply.get("batches", 1) or 1)
            self.counters.add("load_batches", batches)
            loaded.append(
                SliceLoad(
                    slice_index=slot.index,
                    shard=slot.primary,
                    nodes=int(reply.get("nodes", 0)),
                    replicas=slot.replicas,
                    batches=batches,
                )
            )
        self.counters.add("loads")
        return ClusterLoadReport(document=name, slices=tuple(loaded))

    def _load_to(
        self,
        shard: int,
        payload: str,
        name: str,
        *,
        batch_size: int | None = None,
    ) -> dict:
        pool = self._clients[shard]
        client = pool.acquire()
        try:
            if batch_size is None:
                reply = client.load(payload, name)
            else:
                reply = client.load_stream(
                    payload, name, batch_size=batch_size
                )
        except Exception:
            pool.discard(client)
            self._record_failure(shard)
            raise
        pool.release(client)
        self._record_success(shard)
        return reply

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        text: str,
        *,
        plan: str | None = None,
        timeout: float | None = None,
        allow_partial: bool = False,
    ) -> ClusterResult:
        """Scatter, gather, merge — under one deadline budget."""
        started = self._clock()
        deadline = started + (
            timeout if timeout is not None else self.config.query_timeout
        )
        expr = parse_query(text)
        placement = self._placement_for(expr)
        self.counters.add("fanouts")
        if not placement.partitioned:
            rows, missing = self._run_single(
                placement, text, plan, deadline, allow_partial
            )
            kind = "single"
            sortby = ()
        else:
            merge_plan = compile_merge(expr)
            # The rewritten shard query carries extra wrapper items, so
            # it falls outside the two-item shape the GROUPBY translator
            # accepts: grouping plan modes would fail shard-side.  Those
            # modes describe single-node physical plans; distributed
            # slices run AUTO (which resolves to the interpreter).
            shard_plan = plan if plan in (None, "auto", "direct") else "auto"
            rows, missing = self._run_partitioned(
                placement, merge_plan, shard_plan, deadline, allow_partial
            )
            kind = merge_plan.kind
            sortby = merge_plan.sortby
            rows = apply_sortby(rows, sortby)
        self.counters.add("merges")
        self.counters.add("merged_groups", len(rows))
        used = placement.shards() - missing
        return ClusterResult(
            collection=Collection([DataTree(row) for row in rows]),
            plan_kind=kind,
            elapsed_seconds=self._clock() - started,
            missing_shards=frozenset(missing),
            shards_used=frozenset(used),
        )

    def _placement_for(self, expr) -> DocumentPlacement:
        names = document_names(expr)
        if len(names) != 1:
            raise ClusterError(
                "cluster queries must target exactly one document "
                f"(found {sorted(names)})"
            )
        return self.shard_map.placement(names.pop())

    def _run_single(
        self, placement, text, plan, deadline, allow_partial
    ) -> tuple[list[XMLNode], set[int]]:
        slot = placement.slices[0]
        aliased = rename_document(
            text, {placement.name: replica_alias(placement.name, slot.index)}
        )
        reply = self._call_slice(slot, text, aliased, plan, deadline)
        if reply is None:
            if allow_partial:
                self.counters.add("partial_results")
                return [], set(slot.holders)
            raise ShardUnavailableError(
                f"no holder of {placement.name!r} answered "
                f"(shards {sorted(slot.holders)})",
                missing_shards=frozenset(slot.holders),
            )
        return _rows_from(reply), set()

    def _run_partitioned(
        self, placement, merge_plan: MergePlan, plan, deadline, allow_partial
    ) -> tuple[list[XMLNode], set[int]]:
        slice_rows: list[list[XMLNode] | None] = [None] * len(placement.slices)
        fatal: list[Exception] = []
        threads = []
        for slot in placement.slices:
            aliased = rename_document(
                merge_plan.shard_query,
                {placement.name: replica_alias(placement.name, slot.index)},
            )

            def run(slot=slot, aliased=aliased):
                try:
                    reply = self._call_slice(
                        slot, merge_plan.shard_query, aliased, plan, deadline
                    )
                except Exception as error:  # noqa: BLE001 - re-raised below
                    fatal.append(error)
                    return
                if reply is not None:
                    slice_rows[slot.index] = _rows_from(reply)

            worker = threading.Thread(
                target=run, name=f"cluster-slice-{slot.index}", daemon=True
            )
            worker.start()
            threads.append(worker)
        for worker in threads:
            worker.join()
        if fatal:
            raise fatal[0]
        missing: set[int] = set()
        for slot, rows in zip(placement.slices, slice_rows):
            if rows is None:
                missing.add(slot.primary)
        if missing:
            names = sorted(missing)
            if all(rows is None for rows in slice_rows):
                raise ShardUnavailableError(
                    f"no shard answered for {placement.name!r} "
                    f"(missing {names})",
                    missing_shards=frozenset(missing),
                )
            if not allow_partial:
                raise PartialResultError(
                    f"slices on shards {names} are unavailable; pass "
                    "allow_partial=True to accept a degraded result",
                    missing_shards=frozenset(missing),
                )
            self.counters.add("partial_results")
        survivors = [rows for rows in slice_rows if rows is not None]
        return merge_rows(merge_plan, survivors), missing

    # ------------------------------------------------------------------
    # One slice: candidates, hedging, deadline
    # ------------------------------------------------------------------
    def _call_slice(
        self,
        slot: SlicePlacement,
        primary_text: str,
        replica_text: str,
        plan: str | None,
        deadline: float,
    ) -> dict | None:
        """The fan-out unit: try the slice's holders until one answers
        or the deadline passes.  Returns ``None`` when the slice could
        not be served (the caller decides whether that is fatal)."""
        candidates = [
            (shard, primary_text if shard == slot.primary else replica_text)
            for shard in self._candidate_order(slot)
        ]
        if not candidates:
            return None
        results: queue.Queue = queue.Queue()
        in_flight = 0
        launched = 0

        def attempt(shard: int, text: str, hedged: bool) -> None:
            try:
                reply = self._shard_query(shard, text, plan, deadline)
            except Exception as error:  # noqa: BLE001 - collected, typed upstream
                if _is_failover(error):
                    self._record_failure(shard)
                    results.put((None, shard, hedged, error))
                else:
                    # The shard answered; the *request* is bad.  That is
                    # the caller's error, not the shard's.
                    self._record_success(shard)
                    results.put(("fatal", shard, hedged, error))
            else:
                self._record_success(shard)
                results.put((reply, shard, hedged, None))

        def launch(hedged: bool) -> None:
            nonlocal in_flight, launched
            shard, text = candidates[launched]
            launched += 1
            in_flight += 1
            if hedged:
                self.counters.add("hedges")
            threading.Thread(
                target=attempt,
                args=(shard, text, hedged),
                name=f"cluster-call-{shard}",
                daemon=True,
            ).start()

        launch(hedged=False)
        hedge_at = self._clock() + self.config.hedge_delay
        while in_flight:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return None
            wait = remaining
            if launched < len(candidates):
                wait = min(wait, max(hedge_at - self._clock(), 0.0))
            try:
                reply, shard, hedged, error = results.get(
                    timeout=max(wait, 0.005)
                )
            except queue.Empty:
                if launched < len(candidates) and self._clock() >= hedge_at:
                    launch(hedged=True)
                    hedge_at = self._clock() + self.config.hedge_delay
                continue
            in_flight -= 1
            if reply == "fatal":
                assert error is not None
                raise error
            if reply is not None:
                if hedged:
                    self.counters.add("hedge_wins")
                return reply
            if launched < len(candidates):
                launch(hedged=False)
        return None

    def _candidate_order(self, slot: SlicePlacement) -> list[int]:
        """Healthy holders first (primary, then replicas); quarantined
        holders only if a probe re-admits them, and always behind the
        healthy ones."""
        healthy, benched = [], []
        for shard in slot.holders:
            if self._is_quarantined(shard):
                benched.append(shard)
            else:
                healthy.append(shard)
        for shard in benched:
            if self._probe(shard):
                healthy.append(shard)
        return healthy

    def _shard_query(
        self, shard: int, text: str, plan: str | None, deadline: float
    ) -> dict:
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise ClusterError(f"deadline exhausted before calling shard {shard}")
        pool = self._clients[shard]
        client = pool.acquire()
        self.counters.add("shard_calls")
        try:
            client.set_read_timeout(remaining + 1.0)
            reply = client.query(text, plan=plan, timeout=remaining)
        except Exception:
            self.counters.add("shard_call_failures")
            pool.discard(client)
            raise
        pool.release(client)
        return reply

    # ------------------------------------------------------------------
    # Quarantine bookkeeping
    # ------------------------------------------------------------------
    def _is_quarantined(self, shard: int) -> bool:
        with self._state_lock:
            return self._states[shard].quarantined

    def _record_failure(self, shard: int) -> None:
        with self._state_lock:
            state = self._states[shard]
            state.consecutive_failures += 1
            if (
                not state.quarantined
                and state.consecutive_failures
                >= self.config.quarantine_threshold
            ):
                state.quarantined = True
                self.counters.add("quarantines")

    def _record_success(self, shard: int) -> None:
        with self._state_lock:
            state = self._states[shard]
            state.consecutive_failures = 0
            if state.quarantined:
                state.quarantined = False
                self.counters.add("readmissions")

    def _probe(self, shard: int) -> bool:
        """Half-open-style re-admission: one cheap HEALTH round trip,
        rate-limited to every ``probe_interval`` seconds."""
        now = self._clock()
        with self._state_lock:
            state = self._states[shard]
            if now - state.last_probe < self.config.probe_interval:
                return False
            state.last_probe = now
        self.counters.add("probes")
        pool = self._clients[shard]
        client = pool.acquire()
        try:
            client.set_read_timeout(self.config.probe_timeout)
            report = client.health()
        except Exception:  # noqa: BLE001 - probe outcome is the signal
            self.counters.add("probe_failures")
            pool.discard(client)
            return False
        pool.release(client)
        if report.status == "ok":
            self._record_success(shard)
            return True
        self.counters.add("probe_failures")
        return False

    # ------------------------------------------------------------------
    # EXPLAIN / HEALTH / STATS
    # ------------------------------------------------------------------
    def explain(self, text: str, *, verbose: bool = False) -> Explanation:
        """The cluster plan stacked on a representative shard's local
        explanation of the query it would actually run."""
        expr = parse_query(text)
        placement = self._placement_for(expr)
        if placement.partitioned:
            merge_plan = compile_merge(expr)
            shard_text = merge_plan.shard_query
            merge_line = merge_plan.describe()
        else:
            merge_plan = None
            shard_text = text
            merge_line = "single shard: no merge required"
        lines = [f"document {placement.name!r}: {len(placement.slices)} slice(s)"]
        for slot in placement.slices:
            note = " [quarantined]" if self._is_quarantined(slot.primary) else ""
            extra = (
                f", replicas {list(slot.replicas)}" if slot.replicas else ""
            )
            lines.append(
                f"  slice {slot.index}: shard {slot.primary}{note}{extra}"
            )
        lines.append(f"merge: {merge_line}")
        # The rewritten shard query usually falls outside the two-item
        # GROUPBY shape the translator accepts, so fall back to
        # explaining the original query (same grouping structure).
        local = self._explain_local(placement, [shard_text, text], verbose)
        # Roll the shard's cost-model statistics version up into the
        # cluster section, so a cross-shard plan is traceable to the
        # statistics it was costed against.
        cost_model = local.to_dict().get("cost_model") or {}
        stats_version = cost_model.get("stats_version")
        if stats_version is not None:
            lines.append(f"shard statistics version: {stats_version}")
        payload = {
            "cluster": {
                "document": placement.name,
                "slices": [
                    {
                        "slice": slot.index,
                        "primary": slot.primary,
                        "replicas": list(slot.replicas),
                        "quarantined": self._is_quarantined(slot.primary),
                    }
                    for slot in placement.slices
                ],
                "merge": merge_line,
                "shard_query": shard_text,
                "statistics_version": stats_version,
            }
        }
        return local.with_section("cluster plan", "\n".join(lines), **payload)

    def _explain_local(self, placement, texts, verbose) -> Explanation:
        """A representative shard's explanation, trying each candidate
        query text in order (the rewritten shard query, then the
        original when the rewrite is untranslatable)."""
        last_error: Exception | None = None
        for candidate in texts:
            for slot in placement.slices:
                for shard in self._candidate_order(slot):
                    text = (
                        candidate
                        if shard == slot.primary
                        else rename_document(
                            candidate,
                            {
                                placement.name: replica_alias(
                                    placement.name, slot.index
                                )
                            },
                        )
                    )
                    try:
                        reply = self._clients[shard].call(
                            "EXPLAIN", {"q": text, "verbose": verbose}
                        )
                    except RemoteError as error:
                        # The shard answered: the text doesn't explain.
                        self._record_success(shard)
                        last_error = error
                        break  # same outcome everywhere; next candidate
                    except Exception as error:  # noqa: BLE001
                        self._record_failure(shard)
                        last_error = error
                        continue
                    self._record_success(shard)
                    return Explanation(reply.get("text", ""), reply)
                else:
                    continue
                break  # RemoteError: skip remaining slices for this text
        if isinstance(last_error, RemoteError):
            return Explanation(f"(no shard plan: {last_error})", {})
        raise ShardUnavailableError(
            f"no shard could explain against {placement.name!r}"
        ) from last_error

    def health(self) -> ClusterHealth:
        """Fan HEALTH out everywhere and roll the answers up:
        unreachable/quarantined/degraded anywhere → ``degraded``; else
        draining anywhere → ``draining``; else ``ok``."""
        reports: dict[int, HealthReport | None] = {}
        for shard, pool in enumerate(self._clients):
            client = pool.acquire()
            try:
                client.set_read_timeout(self.config.probe_timeout)
                reports[shard] = client.health()
            except Exception:  # noqa: BLE001 - unreachable == degraded
                pool.discard(client)
                reports[shard] = None
                self._record_failure(shard)
                continue
            pool.release(client)
            self._record_success(shard)
        with self._state_lock:
            quarantined = frozenset(
                s.shard for s in self._states if s.quarantined
            )
        degraded = quarantined or any(
            report is None or report.status.startswith("degraded")
            for report in reports.values()
        )
        draining = any(
            report is not None and report.draining
            for report in reports.values()
        )
        status = "degraded" if degraded else ("draining" if draining else "ok")
        return ClusterHealth(
            status=status, shards=reports, quarantined=quarantined
        )

    def stats(self) -> CounterSnapshot:
        """Cluster counters plus the element-wise sum of every
        reachable shard's counters."""
        merged: dict[str, int] = dict(self.counters.snapshot())
        for shard, pool in enumerate(self._clients):
            try:
                reply = pool.call("STATS")
            except Exception:  # noqa: BLE001 - stats are best-effort
                continue
            for key, value in reply.items():
                if isinstance(value, int):
                    merged[key] = merged.get(key, 0) + value
            for key, value in pool.counters.snapshot().items():
                merged[key] = merged.get(key, 0) + value
        return CounterSnapshot(merged)

    def counter_snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(self.counters.snapshot())

    def quarantined_shards(self) -> frozenset[int]:
        with self._state_lock:
            return frozenset(s.shard for s in self._states if s.quarantined)

    def close(self) -> None:
        for pool in self._clients:
            pool.close()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _split(root: XMLNode, count: int) -> list[XMLNode]:
    """Contiguous slices of the root's children, each under a copy of
    the root element (slice order == document order)."""
    kids = root.children
    base, extra = divmod(len(kids), count)
    pieces = []
    cursor = 0
    for index in range(count):
        take = base + (1 if index < extra else 0)
        piece = XMLNode(
            root.tag,
            root.content,
            attributes=dict(root.attributes) if root.attributes else None,
        )
        for kid in kids[cursor : cursor + take]:
            piece.append_child(kid.deep_copy())
        cursor += take
        pieces.append(piece)
    return pieces


def _rows_from(reply: dict) -> list[XMLNode]:
    """A QUERY reply's ``xml`` payload re-parsed into result rows."""
    payload = reply.get("xml", "")
    if not payload.strip():
        return []
    wrapper = parse_document(
        f"<{_ROWS_WRAPPER}>" + payload + f"</{_ROWS_WRAPPER}>"
    )
    rows = list(wrapper.children)
    for row in rows:
        row.parent = None
    return rows
