"""Document placement for the sharded cluster.

A :class:`ShardMap` decides which shards hold which pieces of which
documents.  Two placement shapes exist:

* **partitioned** (the default for :meth:`ClusterCoordinator.load`) —
  the document's root children are split into N contiguous *slices*
  (slice order == document order, which is what lets the coordinator
  restore global order by a slice-major merge).  Slice ``k`` of a
  document lands on shard ``(hash(name) + k) % shards``, so different
  documents start their stripes on different shards and load spreads.
* **whole** — the entire document lives on its hash-owner shard
  (classic hash-by-document); queries against it route to one shard
  and need no merge.

Placement is *deterministic* (SHA-1 of the document name, never
Python's per-process randomized ``hash``) and *explicit*: the computed
assignment is recorded, and :meth:`ShardMap.assign` reassigns a slice
to a different primary (rebalance, manual drain) without touching the
hash function.

Replicas: with ``replication=r``, slice ``k`` additionally lives on
the next ``r - 1`` shards around the ring.  A replica copy of a slice
is stored on its shard under :func:`replica_alias` — a distinct
catalog name — so one shard can hold its own primary slice *and*
replicas of its neighbours' without collisions.  The coordinator
rewrites ``document(...)`` calls to the alias when it hedges a call to
a replica holder.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from ..errors import ClusterError


def stable_hash(name: str) -> int:
    """Deterministic across processes and runs (unlike ``hash``)."""
    return int.from_bytes(hashlib.sha1(name.encode("utf-8")).digest()[:8], "big")


def replica_alias(name: str, slice_index: int) -> str:
    """The catalog name a replica copy of ``name``'s slice is stored
    under on its replica shard."""
    return f"{name}~replica{slice_index}"


@dataclass(frozen=True)
class SlicePlacement:
    """Where one slice of a document lives."""

    index: int
    primary: int
    replicas: tuple[int, ...] = ()

    @property
    def holders(self) -> tuple[int, ...]:
        return (self.primary, *self.replicas)


@dataclass(frozen=True)
class DocumentPlacement:
    """The full placement of one document."""

    name: str
    slices: tuple[SlicePlacement, ...]

    @property
    def partitioned(self) -> bool:
        return len(self.slices) > 1

    def shards(self) -> frozenset[int]:
        """Every shard holding any piece (primary or replica)."""
        return frozenset(
            shard for piece in self.slices for shard in piece.holders
        )


class ShardMap:
    """The cluster's placement registry (thread-safe).

    ``place`` computes and records the default placement; ``assign``
    overrides one slice's primary explicitly.  Lookups of unplaced
    documents raise :class:`~repro.errors.ClusterError` — the
    coordinator turns that into a crisp "not in the cluster catalog"
    instead of fanning out a query that no shard can answer.
    """

    def __init__(self, shards: int, *, replication: int = 1):
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        if replication < 1:
            raise ClusterError("replication factor must be >= 1")
        self.shards = shards
        self.replication = min(replication, shards)
        self._placements: dict[str, DocumentPlacement] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, name: str, *, slices: int | None = None) -> DocumentPlacement:
        """Compute, record, and return the placement for ``name``.

        ``slices=None`` means one slice per shard (partitioned);
        ``slices=1`` keeps the document whole on its hash owner.
        """
        count = self.shards if slices is None else slices
        if count < 1:
            raise ClusterError("a document needs at least one slice")
        start = stable_hash(name) % self.shards
        pieces = []
        for index in range(count):
            primary = (start + index) % self.shards
            replicas = tuple(
                (primary + offset) % self.shards
                for offset in range(1, self.replication)
            )
            pieces.append(
                SlicePlacement(index=index, primary=primary, replicas=replicas)
            )
        placement = DocumentPlacement(name=name, slices=tuple(pieces))
        with self._lock:
            self._placements[name] = placement
        return placement

    def assign(self, name: str, slice_index: int, shard: int) -> DocumentPlacement:
        """Explicitly reassign one slice's primary (rebalance)."""
        if not 0 <= shard < self.shards:
            raise ClusterError(f"shard {shard} out of range (0..{self.shards - 1})")
        with self._lock:
            placement = self._placements.get(name)
            if placement is None:
                raise ClusterError(f"document {name!r} is not placed")
            if not 0 <= slice_index < len(placement.slices):
                raise ClusterError(
                    f"slice {slice_index} out of range for {name!r} "
                    f"({len(placement.slices)} slices)"
                )
            old = placement.slices[slice_index]
            replicas = tuple(r for r in old.replicas if r != shard)
            pieces = list(placement.slices)
            pieces[slice_index] = SlicePlacement(
                index=slice_index, primary=shard, replicas=replicas
            )
            updated = DocumentPlacement(name=name, slices=tuple(pieces))
            self._placements[name] = updated
            return updated

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def placement(self, name: str) -> DocumentPlacement:
        with self._lock:
            placement = self._placements.get(name)
        if placement is None:
            raise ClusterError(f"document {name!r} is not in the cluster catalog")
        return placement

    def knows(self, name: str) -> bool:
        with self._lock:
            return name in self._placements

    def documents(self) -> list[str]:
        with self._lock:
            return sorted(self._placements)
