"""Per-shard connection pooling for the coordinator.

:class:`ServiceClient` is deliberately not thread-safe (one socket,
one buffer).  The coordinator fans out concurrently, so each shard
gets a :class:`ShardClient`: a small check-out/check-in pool of
``ServiceClient`` instances that all share ONE
:class:`~repro.service.client.CircuitBreaker` and one
:class:`~repro.service.client.ClientStatistics` — the breaker's view
of the shard's health is pooled even though sockets are not.
"""

from __future__ import annotations

import threading

from ..service.client import (
    BreakerConfig,
    CircuitBreaker,
    ClientStatistics,
    RetryPolicy,
    ServiceClient,
)


class ShardClient:
    """A thread-safe pool of line-protocol clients for one shard."""

    def __init__(
        self,
        shard: int,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        max_pool: int = 8,
    ):
        self.shard = shard
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.counters = ClientStatistics()
        self.breaker = CircuitBreaker(breaker, self.counters)
        self._max_pool = max_pool
        self._idle: list[ServiceClient] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Check-out / check-in
    # ------------------------------------------------------------------
    def acquire(self) -> ServiceClient:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"shard {self.shard} pool is closed")
            if self._idle:
                return self._idle.pop()
        return ServiceClient(
            self.host,
            self.port,
            retry=self.retry,
            breaker=self.breaker,
            connect_timeout=self.connect_timeout,
            read_timeout=self.read_timeout,
        )

    def release(self, client: ServiceClient) -> None:
        client.set_read_timeout(self.read_timeout)
        with self._lock:
            if not self._closed and len(self._idle) < self._max_pool:
                self._idle.append(client)
                return
        client.close()

    def discard(self, client: ServiceClient) -> None:
        """Check-in for a client whose connection state is suspect
        (timeout mid-reply): never reused."""
        client.close()

    def call(self, command: str, spec: dict | None = None, **kwargs) -> dict:
        """One pooled round trip (convenience for non-deadline paths)."""
        client = self.acquire()
        try:
            reply = client.call(command, spec, **kwargs)
        except Exception:
            self.discard(client)
            raise
        self.release(client)
        return reply

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for client in idle:
            client.close()

    @property
    def pooled(self) -> int:
        with self._lock:
            return len(self._idle)
