"""In-process cluster bring-up for tests, benchmarks, and the CLI.

:class:`LocalCluster` starts N independent shard stacks — each its own
:class:`~repro.query.database.Database`,
:class:`~repro.service.service.QueryService`, and background
:class:`~repro.service.server.ServiceServer` on an ephemeral port —
and a :class:`~repro.cluster.coordinator.ClusterCoordinator` in front.
Optionally every shard sits behind its own
:class:`~repro.service.chaos.ChaosProxy`, so a chaos test can stall or
kill exactly one shard mid-storm while the others stay clean.

Everything runs in one process: the soak harness can reach into any
shard's service for white-box assertions (``verify()``, pin counts,
session registry) while the coordinator only ever sees the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..query.database import Database
from ..service.chaos import NO_NET_FAULTS, ChaosProxy, NetFaultPlan
from ..service.server import ServerConfig, ServiceServer
from ..service.service import QueryService, ServiceConfig
from .coordinator import ClusterConfig, ClusterCoordinator


@dataclass
class ShardStack:
    """One shard's full stack (white-box access for tests)."""

    index: int
    db: Database
    service: QueryService
    server: ServiceServer
    proxy: ChaosProxy | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """What the coordinator dials: the proxy if one fronts the
        shard, else the server itself."""
        if self.proxy is not None:
            return self.proxy.endpoint
        return self.server.endpoint


@dataclass
class LocalClusterConfig:
    shards: int = 2
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    service: ServiceConfig | None = None
    server: ServerConfig | None = None
    #: Shard index → chaos plan; listed shards get a ChaosProxy.
    chaos: dict[int, NetFaultPlan] = field(default_factory=dict)
    #: Front every shard with a (transparent) proxy even without a
    #: plan — lets a test inject faults later via ``set_plan``.
    proxy_all: bool = False


class LocalCluster:
    """N in-process shards plus a coordinator; context-manager owned."""

    def __init__(self, config: LocalClusterConfig | None = None, **overrides):
        self.config = config or LocalClusterConfig(**overrides)
        self.shards: list[ShardStack] = []
        for index in range(self.config.shards):
            db = Database()
            service = QueryService(db, self.config.service)
            server = ServiceServer(
                service, "127.0.0.1", 0, self.config.server
            )
            server.serve_background()
            proxy = None
            plan = self.config.chaos.get(index)
            if plan is not None or self.config.proxy_all:
                proxy = ChaosProxy(
                    server.endpoint, plan or NO_NET_FAULTS
                ).start()
            self.shards.append(
                ShardStack(
                    index=index,
                    db=db,
                    service=service,
                    server=server,
                    proxy=proxy,
                )
            )
        self.coordinator = ClusterCoordinator(
            [stack.endpoint for stack in self.shards],
            self.config.cluster,
        )

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    def load(self, **kwargs):
        return self.coordinator.load(**kwargs)

    def query(self, text: str, **kwargs):
        return self.coordinator.query(text, **kwargs)

    def explain(self, text: str, **kwargs):
        return self.coordinator.explain(text, **kwargs)

    def health(self):
        return self.coordinator.health()

    def stats(self):
        return self.coordinator.stats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.coordinator.close()
        for stack in self.shards:
            if stack.proxy is not None:
                stack.proxy.close()
            stack.server.shutdown()
            stack.server.server_close()
            stack.service.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
