"""Fault-tolerant sharded cluster: scatter-gather grouping over N
line-protocol shards.

The paper's identifier-only GROUPBY is what makes this distribution
sound: a shard can group its contiguous slice of a document and report
grouping bases plus partial aggregates, and the coordinator's
slice-major union restores exactly the single-node answer (asserted
structurally in the identity tests).  See :mod:`repro.cluster.merge`
for the algebra, :mod:`repro.cluster.coordinator` for the robustness
core (deadline budgets, hedged retries, quarantine, typed partial
degradation), and :mod:`repro.cluster.launcher` for in-process
bring-up.
"""

from .client import ShardClient
from .coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterHealth,
    ClusterLoadReport,
    ClusterResult,
    ClusterStatistics,
    SliceLoad,
)
from .launcher import LocalCluster, LocalClusterConfig, ShardStack
from .merge import MergePlan, compile_merge, merge_rows, rename_document
from .shardmap import (
    DocumentPlacement,
    ShardMap,
    SlicePlacement,
    replica_alias,
    stable_hash,
)

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterHealth",
    "ClusterLoadReport",
    "ClusterResult",
    "ClusterStatistics",
    "DocumentPlacement",
    "LocalCluster",
    "LocalClusterConfig",
    "MergePlan",
    "ShardClient",
    "ShardMap",
    "ShardStack",
    "SliceLoad",
    "SlicePlacement",
    "compile_merge",
    "merge_rows",
    "rename_document",
    "replica_alias",
    "stable_hash",
]
