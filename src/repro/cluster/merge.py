"""Distributed merge planning: the paper's grouping, scattered.

The TAX GROUPBY is *identifier-only*: a shard can group its slice and
report, per group, the grouping basis plus partial aggregates — it
never needs the other slices to do so.  :func:`compile_merge` inspects
a query AST and decides how slice results combine:

* ``group`` — the paper's shape (``FOR $g IN distinct-values(...)``
  over one document, LET bindings, a constructor RETURN).  Each shard
  runs a rewritten query whose RETURN wraps every constructor item in
  a tagged wrapper inside one ``<zrow>`` per group, always including a
  hidden ``<zk>`` carrying the group key.  The coordinator unions
  groups by atomized key in *slice-major* order — slices are
  contiguous spans of the document, so slice-major first-appearance
  order **is** global document order of first occurrences — and merges
  each wrapper by its operator: ``key`` (take the earliest slice's
  representative, which is the global first occurrence), ``list``
  (concatenate slice-major, restoring document order), ``count``/
  ``sum`` (add), ``min``/``max`` (combine), ``avg`` (shipped as
  sum+count, divided once at the coordinator — the only way partial
  averages merge exactly).
* ``concat`` — no ``distinct-values`` anywhere and iteration is the
  only thing touching the document: shard rows simply concatenate in
  slice-major order.
* ``scalar-count`` — a bare ``count(...)`` over the document: per-shard
  counts add into one scalar row.

``SORTBY`` is stripped from the shard query and re-applied to the
merged rows (sorting a slice tells you nothing about global order).

Anything else — cross-slice dedup inside an item, a LET the WHERE
filters on (HAVING-style), document-spanning joins per row — raises
:class:`~repro.errors.ClusterMergeError`; the coordinator surfaces it
typed instead of merging wrong answers.

Reconstruction mirrors :meth:`Interpreter._construct` exactly: string
values accumulate into the row's ``content`` joined by single spaces,
node values append as children, and aggregate formatting is
int-if-whole else ``repr(float)`` — so a merged row is byte-identical
to the single-node row (asserted by ``xmlmodel.diff`` in the identity
tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterMergeError
from ..query.ast import (
    AggregateCall,
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    Expr,
    FLWR,
    ForClause,
    LetClause,
    PathExpr,
    SortKey,
    StepPredicate,
    TextItem,
    VarRef,
    render,
)
from ..xmlmodel.node import XMLNode

#: Wrapper tags inside a shard row: the hidden group key, per-item
#: wrappers, and the sum/count pair an avg ships as.
ROW_TAG = "zrow"
KEY_TAG = "zk"


def _item_tag(index: int) -> str:
    return f"z{index}"


def _avg_tags(index: int) -> tuple[str, str]:
    return f"zs{index}", f"zn{index}"


# ----------------------------------------------------------------------
# AST inspection helpers
# ----------------------------------------------------------------------
def _children(node: object):
    if not hasattr(node, "__dataclass_fields__"):
        return
    for name in node.__dataclass_fields__:  # type: ignore[union-attr]
        value = getattr(node, name)
        if isinstance(value, tuple):
            for item in value:
                if hasattr(item, "__dataclass_fields__"):
                    yield item
        elif hasattr(value, "__dataclass_fields__"):
            yield value


def _walk(node: object):
    yield node
    for child in _children(node):
        yield from _walk(child)


def _contains(node: object, kinds: tuple[type, ...]) -> bool:
    return any(isinstance(n, kinds) for n in _walk(node))


def document_names(expr: Expr) -> set[str]:
    return {n.name for n in _walk(expr) if isinstance(n, DocumentCall)}


def free_vars(node: object, bound: frozenset = frozenset()) -> set[str]:
    """Variables referenced by ``node`` that it does not itself bind."""
    if isinstance(node, VarRef):
        return set() if node.name in bound else {node.name}
    if isinstance(node, FLWR):
        names: set[str] = set()
        inner = set(bound)
        for clause in node.clauses:
            names |= free_vars(clause.source, frozenset(inner))
            inner.add(clause.var)
        if node.where is not None:
            names |= free_vars(node.where, frozenset(inner))
        names |= free_vars(node.ret, frozenset(inner))
        return names
    names = set()
    for child in _children(node):
        names |= free_vars(child, bound)
    return names


# ----------------------------------------------------------------------
# The merge plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ItemPlan:
    """How one constructor item merges across slices."""

    kind: str  # static-text | static-elem | key | list | count | sum | min | max | avg
    index: int
    source: object  # the original AST item


@dataclass(frozen=True)
class MergePlan:
    """Everything the coordinator needs to scatter and gather."""

    kind: str  # group | concat | scalar-count
    document: str
    shard_query: str  # rewritten query the shards run (SORTBY stripped)
    sortby: tuple[SortKey, ...]
    row_tag: str | None = None
    row_attributes: tuple[tuple[str, str], ...] = ()
    items: tuple[ItemPlan, ...] = ()

    def describe(self) -> str:
        """The merge operators, for the cluster EXPLAIN."""
        if self.kind == "concat":
            text = "concat: shard rows in slice-major order"
        elif self.kind == "scalar-count":
            text = "scalar: sum of per-shard counts"
        else:
            ops = [f"{KEY_TAG}=group-key union (slice-major)"]
            for item in self.items:
                if item.kind in ("static-text", "static-elem"):
                    continue
                if item.kind == "avg":
                    zs, zn = _avg_tags(item.index)
                    ops.append(f"{zs}/{zn}=avg (sum+count)")
                elif item.kind == "list":
                    ops.append(f"{_item_tag(item.index)}=concat")
                elif item.kind == "key":
                    ops.append(f"{_item_tag(item.index)}=first-slice representative")
                else:
                    ops.append(f"{_item_tag(item.index)}={item.kind}")
            text = "group: " + ", ".join(ops)
        if self.sortby:
            text += "; SORTBY re-applied after merge"
        return text


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_merge(expr: Expr) -> MergePlan:
    """Decide how slice results merge for ``expr``.

    Raises :class:`~repro.errors.ClusterMergeError` for shapes with no
    sound merge operator.
    """
    names = document_names(expr)
    if len(names) != 1:
        raise ClusterMergeError(
            f"cluster queries must target exactly one document (found {sorted(names)})"
        )
    document = names.pop()

    if isinstance(expr, CountCall):
        if _contains(expr.argument, (DistinctValues,)):
            raise ClusterMergeError(
                "count over distinct-values needs cross-slice dedup"
            )
        return MergePlan(
            kind="scalar-count",
            document=document,
            shard_query=render(expr),
            sortby=(),
        )

    if isinstance(expr, PathExpr) and not _contains(expr, (DistinctValues,)):
        return MergePlan(
            kind="concat", document=document, shard_query=render(expr), sortby=()
        )

    if not isinstance(expr, FLWR):
        raise ClusterMergeError(
            f"no merge operator for top-level {type(expr).__name__}"
        )

    if _is_group_shape(expr):
        return _compile_group(expr, document)
    return _compile_concat(expr, document)


def _is_group_shape(expr: FLWR) -> bool:
    return (
        bool(expr.clauses)
        and isinstance(expr.clauses[0], ForClause)
        and isinstance(expr.clauses[0].source, DistinctValues)
    )


def _compile_group(expr: FLWR, document: str) -> MergePlan:
    first = expr.clauses[0]
    assert isinstance(first, ForClause)
    group_var = first.var
    if not _contains(first.source, (DocumentCall,)):
        raise ClusterMergeError(
            "the grouping distinct-values must range over the document"
        )
    for clause in expr.clauses[1:]:
        if not isinstance(clause, LetClause):
            raise ClusterMergeError(
                "group merge supports one FOR over distinct-values plus LETs"
            )
        if _contains(clause.source, (DistinctValues,)):
            raise ClusterMergeError(
                f"LET ${clause.var} uses distinct-values (cross-slice dedup)"
            )
    for clause in expr.clauses[1:]:
        if _contains(clause.source, (DocumentCall,)) and not _correlated(
            clause.source, group_var
        ):
            raise ClusterMergeError(
                f"LET ${clause.var} reads the document without comparing "
                f"against ${group_var}; its matches need not co-occur with "
                "the group key's slice"
            )
    let_vars = {c.var for c in expr.clauses[1:]}
    if expr.where is not None:
        where_free = free_vars(expr.where)
        if where_free & let_vars or _contains(expr.where, (DocumentCall,)):
            raise ClusterMergeError(
                "WHERE over LET bindings is HAVING-shaped; shards cannot "
                "filter groups locally"
            )
    if not isinstance(expr.ret, ElementConstructor):
        raise ClusterMergeError(
            "group merge needs a constructor RETURN (one row per group)"
        )

    items: list[ItemPlan] = []
    wrappers: list[ElementConstructor] = [
        ElementConstructor(KEY_TAG, (), (EmbeddedExpr(VarRef(group_var)),))
    ]
    for index, item in enumerate(expr.ret.items):
        plan = _classify_item(item, index, group_var)
        items.append(plan)
        wrappers.extend(_wrappers_for(plan, item))
    shard_expr = FLWR(
        clauses=expr.clauses,
        where=expr.where,
        ret=ElementConstructor(ROW_TAG, (), tuple(wrappers)),
        sortby=(),
    )
    return MergePlan(
        kind="group",
        document=document,
        shard_query=render(shard_expr),
        sortby=expr.sortby,
        row_tag=expr.ret.tag,
        row_attributes=expr.ret.attributes,
        items=tuple(items),
    )


def _classify_item(item: object, index: int, group_var: str) -> ItemPlan:
    if isinstance(item, TextItem):
        return ItemPlan("static-text", index, item)
    if isinstance(item, ElementConstructor):
        if _contains(item, (EmbeddedExpr,)):
            raise ClusterMergeError(
                f"nested constructor <{item.tag}> with embedded expressions "
                "has no per-item merge operator"
            )
        return ItemPlan("static-elem", index, item)
    assert isinstance(item, EmbeddedExpr)
    inner = item.expr
    if _contains(inner, (DistinctValues,)):
        raise ClusterMergeError(
            "distinct-values inside a RETURN item needs cross-slice dedup"
        )
    # Deterministic per group value: depends only on the group variable,
    # never on slice-local data — the winning (earliest) slice's value
    # is the global value.
    if free_vars(inner) <= {group_var} and not _contains(
        inner, (DocumentCall, FLWR)
    ):
        return ItemPlan("key", index, item)
    if _contains(inner, (DocumentCall,)) and not _correlated(inner, group_var):
        raise ClusterMergeError(
            f"a RETURN item reads the document without comparing against "
            f"${group_var}; its matches need not co-occur with the group "
            "key's slice"
        )
    if isinstance(inner, CountCall):
        return ItemPlan("count", index, item)
    if isinstance(inner, AggregateCall):
        return ItemPlan(inner.function, index, item)
    return ItemPlan("list", index, item)


def _correlated(expr: object, group_var: str) -> bool:
    """True when ``expr`` compares something against the group variable
    (a WHERE clause or a step predicate), i.e. its document matches are
    anchored to occurrences of the group key.  This *locality* is what
    makes slice-local evaluation exact: a match in slice ``k`` contains
    the key, so slice ``k``'s grouping pass also emits the group."""
    for node in _walk(expr):
        if isinstance(node, Comparison):
            if any(
                isinstance(side, VarRef) and side.name == group_var
                for side in (node.left, node.right)
            ):
                return True
        elif isinstance(node, StepPredicate):
            right = node.right
            if isinstance(right, VarRef) and right.name == group_var:
                return True
    return False


def _wrappers_for(plan: ItemPlan, item: object) -> list[ElementConstructor]:
    if plan.kind in ("static-text", "static-elem"):
        return []  # rebuilt locally; never shipped
    assert isinstance(item, EmbeddedExpr)
    if plan.kind == "avg":
        inner = item.expr
        assert isinstance(inner, AggregateCall)
        zs, zn = _avg_tags(plan.index)
        return [
            ElementConstructor(
                zs, (), (EmbeddedExpr(AggregateCall("sum", inner.argument)),)
            ),
            ElementConstructor(
                zn, (), (EmbeddedExpr(CountCall(inner.argument)),)
            ),
        ]
    return [ElementConstructor(_item_tag(plan.index), (), (item,))]


def _compile_concat(expr: FLWR, document: str) -> MergePlan:
    if _contains(expr, (DistinctValues,)):
        raise ClusterMergeError(
            "distinct-values outside the grouping FOR needs cross-slice dedup"
        )
    doc_fors = 0
    for position, clause in enumerate(expr.clauses):
        has_doc = _contains(clause.source, (DocumentCall,))
        if not has_doc:
            continue
        if isinstance(clause, LetClause):
            raise ClusterMergeError(
                f"LET ${clause.var} binds document data as one sequence; "
                "slices cannot reproduce it"
            )
        doc_fors += 1
        if doc_fors > 1 or position != 0:
            raise ClusterMergeError(
                "only the first FOR may range over the document "
                "(cross products do not distribute over slices)"
            )
    if doc_fors == 0:
        raise ClusterMergeError("the query never iterates the document")
    if expr.where is not None and _contains(expr.where, (DocumentCall,)):
        raise ClusterMergeError("WHERE re-reads the document (cross-slice)")
    if _contains(expr.ret, (DocumentCall,)):
        raise ClusterMergeError(
            "RETURN re-reads the document per row (cross-slice join)"
        )
    shard_expr = FLWR(
        clauses=expr.clauses, where=expr.where, ret=expr.ret, sortby=()
    )
    return MergePlan(
        kind="concat",
        document=document,
        shard_query=render(shard_expr),
        sortby=expr.sortby,
    )


# ----------------------------------------------------------------------
# Document rewriting (replica routing)
# ----------------------------------------------------------------------
def rename_document(text_or_expr, mapping: dict[str, str]) -> str:
    """The query text with every ``document(old)`` renamed per
    ``mapping`` — how a hedged call targets a replica's alias."""
    from ..query.parser import parse_query

    expr = (
        parse_query(text_or_expr)
        if isinstance(text_or_expr, str)
        else text_or_expr
    )
    return render(_rename(expr, mapping))


def _rename(node, mapping: dict[str, str]):
    if isinstance(node, DocumentCall):
        return DocumentCall(mapping.get(node.name, node.name))
    if not hasattr(node, "__dataclass_fields__"):
        return node
    changes = {}
    for name in node.__dataclass_fields__:
        value = getattr(node, name)
        if isinstance(value, tuple):
            renamed = tuple(
                _rename(item, mapping)
                if hasattr(item, "__dataclass_fields__")
                else item
                for item in value
            )
            if renamed != value:
                changes[name] = renamed
        elif hasattr(value, "__dataclass_fields__"):
            renamed_one = _rename(value, mapping)
            if renamed_one is not value:
                changes[name] = renamed_one
    if not changes:
        return node
    import dataclasses

    return dataclasses.replace(node, **changes)


# ----------------------------------------------------------------------
# Row merging
# ----------------------------------------------------------------------
def atomize(node: XMLNode) -> str:
    return "".join(n.content or "" for n in node.iter())


def _wrapper(row: XMLNode, tag: str) -> XMLNode | None:
    for child in row.children:
        if child.tag == tag:
            return child
    return None


def merge_rows(plan: MergePlan, slice_rows: list[list[XMLNode]]) -> list[XMLNode]:
    """Combine per-slice row lists (slice order!) into the global rows.

    ``slice_rows[i]`` is slice ``i``'s result rows in shard-local
    order.  Missing slices must already have been handled (partial
    degradation) — this function assumes what it is given is what
    should merge.
    """
    if plan.kind == "concat":
        return [row for rows in slice_rows for row in rows]
    if plan.kind == "scalar-count":
        total = 0
        for rows in slice_rows:
            for row in rows:
                total += int(atomize(row) or "0")
        return [XMLNode("value", str(total))]
    # group: union keys slice-major, then rebuild each row.
    order: list[str] = []
    buckets: dict[str, list[XMLNode]] = {}
    for rows in slice_rows:
        for row in rows:
            key_node = _wrapper(row, KEY_TAG)
            key = atomize(key_node) if key_node is not None else ""
            bucket = buckets.get(key)
            if bucket is None:
                order.append(key)
                buckets[key] = [row]
            else:
                bucket.append(row)
    return [_rebuild_row(plan, buckets[key]) for key in order]


def _rebuild_row(plan: MergePlan, rows: list[XMLNode]) -> XMLNode:
    """One merged group row, reconstructed with the exact semantics of
    ``Interpreter._construct`` (texts join into content, nodes become
    children)."""
    assert plan.row_tag is not None
    node = XMLNode(plan.row_tag, attributes=dict(plan.row_attributes) or None)
    texts: list[str] = []
    winner = rows[0]  # earliest slice containing the group
    for item in plan.items:
        if item.kind == "static-text":
            assert isinstance(item.source, TextItem)
            texts.append(item.source.text)
        elif item.kind == "static-elem":
            assert isinstance(item.source, ElementConstructor)
            node.append_child(_build_static(item.source))
        elif item.kind == "key":
            wrapper = _wrapper(winner, _item_tag(item.index))
            _absorb(wrapper, texts, node)
        elif item.kind == "list":
            for row in rows:
                _absorb(_wrapper(row, _item_tag(item.index)), texts, node)
        elif item.kind == "count":
            total = 0
            for row in rows:
                wrapper = _wrapper(row, _item_tag(item.index))
                if wrapper is not None and wrapper.content:
                    total += int(wrapper.content)
            texts.append(str(total))
        elif item.kind == "sum":
            texts.append(
                _format_number(
                    sum(_numbers_from(rows, _item_tag(item.index))) or 0.0
                )
            )
        elif item.kind in ("min", "max"):
            values = _numbers_from(rows, _item_tag(item.index))
            if values:
                combine = min if item.kind == "min" else max
                texts.append(_format_number(combine(values)))
        elif item.kind == "avg":
            zs, zn = _avg_tags(item.index)
            total = sum(_numbers_from(rows, zs))
            count = int(sum(_numbers_from(rows, zn)))
            if count:
                texts.append(_format_number(total / count))
        else:  # pragma: no cover - plan kinds are closed
            raise ClusterMergeError(f"unknown item kind {item.kind!r}")
    if texts:
        node.content = " ".join(texts)
    return node


def _absorb(wrapper: XMLNode | None, texts: list[str], node: XMLNode) -> None:
    """Move a wrapper's payload into the row under reconstruction.

    A wrapper's ``content`` is the space-join of that item's string
    values on that shard; appending it as one text piece yields the
    same final space-joined ``content`` as appending each value."""
    if wrapper is None:
        return
    if wrapper.content:
        texts.append(wrapper.content)
    for child in list(wrapper.children):
        node.append_child(child)


def _numbers_from(rows: list[XMLNode], tag: str) -> list[float]:
    values: list[float] = []
    for row in rows:
        wrapper = _wrapper(row, tag)
        if wrapper is not None and wrapper.content:
            values.append(float(wrapper.content))
    return values


def _format_number(result: float) -> str:
    """Match ``Interpreter._aggregate``: int-if-whole else repr."""
    if result == int(result):
        return str(int(result))
    return repr(result)


def _build_static(ctor: ElementConstructor) -> XMLNode:
    node = XMLNode(ctor.tag, attributes=dict(ctor.attributes) or None)
    texts: list[str] = []
    for item in ctor.items:
        if isinstance(item, TextItem):
            texts.append(item.text)
        elif isinstance(item, ElementConstructor):
            node.append_child(_build_static(item))
    if texts:
        node.content = " ".join(texts)
    return node


# ----------------------------------------------------------------------
# SORTBY over merged rows
# ----------------------------------------------------------------------
def apply_sortby(rows: list[XMLNode], sortby: tuple[SortKey, ...]) -> list[XMLNode]:
    """The interpreter's 2001-era SORTBY, over constructed nodes:
    stable sort, rightmost key first so the leftmost is primary."""
    if not sortby:
        return rows
    from ..core.base import numeric_or_text

    ordered = list(rows)
    for key in reversed(sortby):
        ordered.sort(
            key=lambda row: numeric_or_text(_sort_value(row, key.path)),
            reverse=key.direction == "DESCENDING",
        )
    return ordered


def _sort_value(node: XMLNode, path: tuple[str, ...]) -> str:
    if path == (".",):
        return atomize(node)
    nodes = [node]
    for name in path:
        nodes = [child for n in nodes for child in n.findall(name)]
    return atomize(nodes[0]) if nodes else ""
