"""Deterministic fault injection for the storage stack.

TIMBER inherits crash safety from Shore; to reproduce (and test) that
layer we need a way to make our disk misbehave on demand.  This module
provides it:

* :class:`FaultPlan` — a declarative, seed-driven description of which
  faults to inject (transient read/write errors, short reads, bit
  flips, torn writes, fail-after-N, crash at a named journal step).
  Plans parse from a compact ``key=value`` string so tests, the CLI,
  and CI can all install one (``REPRO_FAULT_PLAN`` environment
  variable).
* :class:`FaultyDiskManager` — a transparent wrapper around a
  :class:`~repro.storage.disk.DiskManager` that consults the plan on
  every physical operation.  With an all-zero plan it is a pure
  pass-through (CI proves this by running the whole suite with
  ``REPRO_FAULT_PLAN=none``).
* :func:`maybe_crash` — the crash-point hook the journaled write paths
  call at every step; a plan with ``crash_at=<point>`` kills the
  process *model* there (raises :class:`SimulatedCrash`), leaving the
  on-disk state exactly as a real crash would.

Everything is deterministic: one ``random.Random(seed)`` per wrapper,
so a failing seed reproduces exactly.
"""

from __future__ import annotations

import dataclasses
import os
import random
from dataclasses import dataclass

from ..errors import StorageError, TransientIOError
from .disk import DiskManager
from .page import HEADER_SIZE, PAGE_SIZE, Page

#: Environment variable holding a parseable fault plan; when set, every
#: :class:`~repro.storage.store.NodeStore` wraps its disk manager.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class SimulatedCrash(BaseException):
    """The process "died" at an injected crash point.

    Deliberately a ``BaseException`` subclass: recovery code that
    catches ``Exception`` (or :class:`ReproError`) must not be able to
    swallow a simulated crash — nothing can run after a real one.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    Rates are per-operation probabilities in ``[0, 1]``; counts are
    absolute operation indices.  ``max_faults`` bounds the *total*
    number of injected faults so that retry loops eventually succeed.
    """

    seed: int = 0
    read_error_rate: float = 0.0  # transient IOError on read
    write_error_rate: float = 0.0  # transient IOError on write
    short_read_rate: float = 0.0  # transient short read
    bit_flip_rate: float = 0.0  # corrupt one payload bit on read
    torn_write_after: int | None = None  # tear the write after N good ones
    fail_after: int | None = None  # persistent failure after N operations
    crash_at: str | None = None  # named crash point (see journal.py)
    max_faults: int | None = None  # stop injecting after N faults

    def is_noop(self) -> bool:
        """True when the plan injects nothing (transparent wrapper)."""
        return (
            self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.short_read_rate == 0.0
            and self.bit_flip_rate == 0.0
            and self.torn_write_after is None
            and self.fail_after is None
            and self.crash_at is None
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``"seed=7,read_error_rate=0.1,crash_at=load.pages_synced"``.

        ``"none"`` (or an empty string) yields the no-fault plan —
        useful to install the wrapper without any faults.
        """
        text = text.strip()
        if text in ("", "none", "off"):
            return cls()
        fields = {field.name: field for field in dataclasses.fields(cls)}
        values: dict[str, object] = {}
        for part in text.replace(";", ",").split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise StorageError(f"fault plan: expected key=value, got {part!r}")
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in fields:
                known = ", ".join(sorted(fields))
                raise StorageError(f"fault plan: unknown key {key!r} (known: {known})")
            if key == "crash_at":
                values[key] = raw
            elif key in ("seed",):
                values[key] = int(raw)
            elif key in ("torn_write_after", "fail_after", "max_faults"):
                values[key] = None if raw.lower() == "none" else int(raw)
            else:
                values[key] = float(raw)
        return cls(**values)  # type: ignore[arg-type]

    def describe(self) -> str:
        """The plan back in its parseable string form."""
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value}")
        return ",".join(parts) if parts else "none"


#: The transparent plan (wrapper installed, nothing injected).
NO_FAULTS = FaultPlan()


def plan_from_env() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` if unset."""
    text = os.environ.get(FAULT_PLAN_ENV)
    if text is None:
        return None
    return FaultPlan.parse(text)


def maybe_crash(plan: FaultPlan | None, point: str, counters: "FaultStatistics | None" = None) -> None:
    """Raise :class:`SimulatedCrash` when ``plan`` targets ``point``."""
    if plan is not None and plan.crash_at == point:
        if counters is not None:
            counters.crashes += 1
        raise SimulatedCrash(point)


class FaultStatistics:
    """Counters for every fault actually injected."""

    __slots__ = (
        "injected_read_errors",
        "injected_write_errors",
        "injected_short_reads",
        "injected_bit_flips",
        "injected_torn_writes",
        "injected_fail_after",
        "crashes",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def total(self) -> int:
        return sum(getattr(self, name) for name in self.__slots__)

    def snapshot(self) -> dict[str, int]:
        return {f"fault_{name}": getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = " ".join(f"{n}={getattr(self, n)}" for n in self.__slots__)
        return f"<FaultStatistics {inner}>"


class FaultyDiskManager:
    """A :class:`DiskManager` wrapper that injects faults per a plan.

    Injected faults:

    * **transient read/write errors** — :class:`TransientIOError`
      before the operation touches the backing store;
    * **short reads** — also transient (a retry sees the full page);
    * **bit flips** — the read succeeds but one payload bit is flipped,
      so page validation raises ``PageCorruptionError``;
    * **torn writes** — after ``torn_write_after`` successful writes,
      the next write persists only a prefix of the page and raises
      :class:`SimulatedCrash` (the process died mid-write);
    * **fail-after-N** — every operation past ``fail_after`` raises
      :class:`TransientIOError`, modelling a dead device (bounded
      retries exhaust and surface the error).

    Anything not intercepted delegates to the wrapped manager, so the
    wrapper is invisible to callers (including attribute access).
    """

    def __init__(self, inner: DiskManager, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.fault_counters = FaultStatistics()
        self._ops = 0
        self._good_writes = 0

    # -- plan machinery --------------------------------------------------
    def _budget_left(self) -> bool:
        limit = self.plan.max_faults
        return limit is None or self.fault_counters.total() < limit

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0 or not self._budget_left():
            return False
        return self.rng.random() < rate

    def _count_op(self) -> None:
        self._ops += 1
        if self.plan.fail_after is not None and self._ops > self.plan.fail_after:
            self.fault_counters.injected_fail_after += 1
            raise TransientIOError(
                f"injected device failure (operation {self._ops} past "
                f"fail_after={self.plan.fail_after})"
            )

    # -- faulted operations ----------------------------------------------
    def read_page(self, page_id: int) -> Page:
        self._count_op()
        if self._roll(self.plan.read_error_rate):
            self.fault_counters.injected_read_errors += 1
            raise TransientIOError(f"injected transient read error on page {page_id}")
        if self._roll(self.plan.short_read_rate):
            self.fault_counters.injected_short_reads += 1
            raise TransientIOError(f"injected short read on page {page_id}")
        page = self.inner.read_page(page_id)
        if self._roll(self.plan.bit_flip_rate):
            self.fault_counters.injected_bit_flips += 1
            flipped = bytearray(page.data)
            # Flip inside the checksummed payload so validation trips.
            bit = self.rng.randrange((PAGE_SIZE - HEADER_SIZE) * 8)
            flipped[HEADER_SIZE + bit // 8] ^= 1 << (bit % 8)
            return Page(page_id, flipped)  # raises PageCorruptionError
        return page

    def write_page(self, page: Page) -> None:
        self._count_op()
        if (
            self.plan.torn_write_after is not None
            and self._good_writes >= self.plan.torn_write_after
            and self._budget_left()
        ):
            self.fault_counters.injected_torn_writes += 1
            self._tear_write(page)
            self.fault_counters.crashes += 1
            raise SimulatedCrash(f"torn write on page {page.page_id}")
        if self._roll(self.plan.write_error_rate):
            self.fault_counters.injected_write_errors += 1
            raise TransientIOError(f"injected transient write error on page {page.page_id}")
        self.inner.write_page(page)
        self._good_writes += 1

    def _tear_write(self, page: Page) -> None:
        """Persist only a prefix of the page — what a crash mid-write
        leaves behind."""
        raw = page.seal()
        cut = self.rng.randrange(1, PAGE_SIZE)
        inner = self.inner
        if inner._memory is not None:
            inner._memory[page.page_id] = raw[:cut]
        else:
            assert inner._handle is not None
            inner._handle.seek(page.page_id * PAGE_SIZE)
            inner._handle.write(raw[:cut])
            inner._handle.flush()

    # -- transparent delegation ------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __enter__(self) -> "FaultyDiskManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultyDiskManager plan=({self.plan.describe()}) inner={self.inner!r}>"
