"""Disk manager: the page file and physical I/O accounting.

The disk manager owns the array of pages and counts every physical read
and write.  Two backings are provided:

* **file** — pages live in one binary file (``data.pages``); reads seek
  and read 8 KB, writes seek and write 8 KB.  This is the production
  mode the examples and benchmarks use.
* **memory** — pages live in a dict.  Unit tests use this to exercise
  the exact same code paths without touching the filesystem; the
  physical-I/O counters still advance, so cost accounting is identical.

Physical I/O counts are the reproduction's stand-in for the paper's
wall-clock differences between plans: a plan that touches fewer node
records reads fewer pages.
"""

from __future__ import annotations

import os

from ..errors import StorageError
from .page import PAGE_SIZE, Page


class IOStatistics:
    """Mutable counters for physical page traffic."""

    __slots__ = ("physical_reads", "physical_writes", "allocations")

    def __init__(self):
        self.physical_reads = 0
        self.physical_writes = 0
        self.allocations = 0

    def reset(self) -> None:
        self.physical_reads = 0
        self.physical_writes = 0
        self.allocations = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "allocations": self.allocations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<IOStatistics reads={self.physical_reads} "
            f"writes={self.physical_writes} allocs={self.allocations}>"
        )


class DiskManager:
    """Allocate, read, and write pages by page id."""

    def __init__(self, path: str | None = None):
        """``path=None`` selects the in-memory backing."""
        self.path = path
        self.counters = IOStatistics()
        self._n_pages = 0
        self._memory: dict[int, bytes] | None = None
        self._handle = None
        if path is None:
            self._memory = {}
        else:
            # "r+b" keeps an existing file; create it when absent.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._handle = open(path, mode)
            self._handle.seek(0, os.SEEK_END)
            size = self._handle.tell()
            if size % PAGE_SIZE != 0:
                raise StorageError(
                    f"{path}: size {size} is not a multiple of the page size"
                )
            self._n_pages = size // PAGE_SIZE

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self):
        """An immutable snapshot of the physical-I/O counters."""
        from ..observability.counters import CounterSnapshot

        return CounterSnapshot(self.counters.snapshot())

    def reset_stats(self) -> None:
        """Explicitly zero the physical-I/O counters."""
        self.counters.reset()

    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return self._n_pages

    def allocate_page(self) -> int:
        """Reserve a new page id (the page is materialized on first write)."""
        page_id = self._n_pages
        self._n_pages += 1
        self.counters.allocations += 1
        return page_id

    def write_page(self, page: Page) -> None:
        """Seal and persist ``page``."""
        if not 0 <= page.page_id < self._n_pages:
            raise StorageError(f"write to unallocated page {page.page_id}")
        raw = page.seal()
        if self._memory is not None:
            self._memory[page.page_id] = raw
        else:
            assert self._handle is not None
            self._handle.seek(page.page_id * PAGE_SIZE)
            self._handle.write(raw)
        page.dirty = False
        self.counters.physical_writes += 1

    def read_page(self, page_id: int) -> Page:
        """Fetch a page from the backing store (counts one physical read)."""
        if not 0 <= page_id < self._n_pages:
            raise StorageError(f"read of unallocated page {page_id}")
        if self._memory is not None:
            raw = self._memory.get(page_id)
            if raw is None:
                raise StorageError(f"page {page_id} was allocated but never written")
        else:
            assert self._handle is not None
            self._handle.seek(page_id * PAGE_SIZE)
            raw = self._handle.read(PAGE_SIZE)
            if len(raw) != PAGE_SIZE:
                raise StorageError(f"short read on page {page_id}")
        self.counters.physical_reads += 1
        return Page(page_id, bytearray(raw))

    def flush(self) -> None:
        """Force file contents to the OS (no-op for the memory backing)."""
        if self._handle is not None:
            self._handle.flush()

    def sync(self) -> None:
        """Force file contents to stable storage (flush + fsync)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def truncate(self, n_pages: int) -> None:
        """Drop every page past ``n_pages`` (crash-recovery rollback)."""
        if n_pages < 0 or n_pages > self._n_pages:
            raise StorageError(
                f"cannot truncate to {n_pages} pages (have {self._n_pages})"
            )
        if self._memory is not None:
            for page_id in [pid for pid in self._memory if pid >= n_pages]:
                del self._memory[page_id]
        else:
            assert self._handle is not None
            self._handle.truncate(n_pages * PAGE_SIZE)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._n_pages = n_pages

    def close(self) -> None:
        """Flush, fsync, and close the handle.  Idempotent: a second
        close (or ``__exit__`` after an explicit close) is a no-op."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
