"""Slotted pages — the unit of disk I/O and buffering.

The paper's TIMBER runs on Shore with an 8 KB page size and a 32 MB
buffer pool (Sec. 6); this module reproduces the storage granularity.  A
page holds variable-length records behind a slot directory:

::

    +--------+---------------------------------+-------------+
    | header | records (grow ->)      free     | <- slot dir |
    +--------+---------------------------------+-------------+

Header layout (big-endian):

========  =====  =========================================
offset    size   field
========  =====  =========================================
0         2      magic (0x7D2A)
2         4      page id
6         2      number of slots
8         2      free-space offset (start of free region)
10        4      CRC32 checksum of the payload
========  =====  =========================================

Each slot directory entry is 4 bytes (record offset, record length),
stored from the end of the page growing downwards.  Slot ``i`` lives at
``PAGE_SIZE - 4 * (i + 1)``.
"""

from __future__ import annotations

import struct
import zlib

from ..errors import PageCorruptionError, StorageError

PAGE_SIZE = 8192
PAGE_MAGIC = 0x7D2A
HEADER_SIZE = 14
SLOT_SIZE = 4

_HEADER = struct.Struct(">HIHHI")
_SLOT = struct.Struct(">HH")


class Page:
    """One slotted page, backed by a mutable ``bytearray``."""

    __slots__ = ("page_id", "data", "dirty")

    def __init__(self, page_id: int, data: bytearray | None = None):
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self.page_id = page_id
            self._write_header(n_slots=0, free_offset=HEADER_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page {page_id}: expected {PAGE_SIZE} bytes, got {len(data)}"
                )
            self.data = data
            self.page_id = page_id
            self._validate(page_id)
        self.dirty = False

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def _write_header(self, n_slots: int, free_offset: int, checksum: int = 0) -> None:
        _HEADER.pack_into(self.data, 0, PAGE_MAGIC, self.page_id, n_slots, free_offset, checksum)

    def _read_header(self) -> tuple[int, int, int, int, int]:
        return _HEADER.unpack_from(self.data, 0)

    @property
    def n_slots(self) -> int:
        return self._read_header()[2]

    @property
    def free_offset(self) -> int:
        return self._read_header()[3]

    def free_space(self) -> int:
        """Bytes available for one more record plus its slot entry."""
        directory_start = PAGE_SIZE - SLOT_SIZE * self.n_slots
        available = directory_start - self.free_offset - SLOT_SIZE
        return max(available, 0)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def insert_record(self, payload: bytes) -> int:
        """Append a record, returning its slot number.

        Raises :class:`StorageError` when the record does not fit.
        """
        if len(payload) > self.free_space():
            raise StorageError(
                f"page {self.page_id}: record of {len(payload)} bytes does not fit "
                f"({self.free_space()} bytes free)"
            )
        magic, page_id, n_slots, free_offset, _ = self._read_header()
        offset = free_offset
        self.data[offset : offset + len(payload)] = payload
        slot_pos = PAGE_SIZE - SLOT_SIZE * (n_slots + 1)
        _SLOT.pack_into(self.data, slot_pos, offset, len(payload))
        self._write_header(n_slots + 1, offset + len(payload))
        self.dirty = True
        return n_slots

    def overwrite_record(self, slot: int, payload: bytes) -> None:
        """Replace the payload in ``slot`` with an equal-length one.

        Slotted pages pack records densely, so in-place updates must
        preserve the encoded length — callers that need to grow a record
        have to rewrite the page.  The streaming ingest path uses this
        to advance a document root's fixed-width ``end`` label at every
        batch commit.
        """
        n_slots = self.n_slots
        if not 0 <= slot < n_slots:
            raise StorageError(f"page {self.page_id}: no slot {slot} (have {n_slots})")
        slot_pos = PAGE_SIZE - SLOT_SIZE * (slot + 1)
        offset, length = _SLOT.unpack_from(self.data, slot_pos)
        if len(payload) != length:
            raise StorageError(
                f"page {self.page_id} slot {slot}: in-place overwrite needs "
                f"{length} bytes, got {len(payload)}"
            )
        self.data[offset : offset + length] = payload
        self.dirty = True

    def read_record(self, slot: int) -> bytes:
        """Return the payload stored in ``slot``."""
        n_slots = self.n_slots
        if not 0 <= slot < n_slots:
            raise StorageError(f"page {self.page_id}: no slot {slot} (have {n_slots})")
        slot_pos = PAGE_SIZE - SLOT_SIZE * (slot + 1)
        offset, length = _SLOT.unpack_from(self.data, slot_pos)
        return bytes(self.data[offset : offset + length])

    def records(self) -> list[bytes]:
        """All record payloads in slot order."""
        return [self.read_record(slot) for slot in range(self.n_slots)]

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _payload_checksum(self) -> int:
        return zlib.crc32(self.data[HEADER_SIZE:]) & 0xFFFFFFFF

    def seal(self) -> bytes:
        """Stamp the checksum and return the raw bytes for writing out."""
        magic, page_id, n_slots, free_offset, _ = self._read_header()
        self._write_header(n_slots, free_offset, self._payload_checksum())
        return bytes(self.data)

    def _validate(self, expected_page_id: int) -> None:
        magic, page_id, n_slots, free_offset, checksum = self._read_header()
        if magic != PAGE_MAGIC:
            raise PageCorruptionError(
                f"page {expected_page_id}: bad magic 0x{magic:04X}"
            )
        if page_id != expected_page_id:
            raise PageCorruptionError(
                f"page {expected_page_id}: header claims page id {page_id}"
            )
        if checksum != self._payload_checksum():
            raise PageCorruptionError(f"page {expected_page_id}: checksum mismatch")
        if free_offset < HEADER_SIZE or free_offset > PAGE_SIZE:
            raise PageCorruptionError(
                f"page {expected_page_id}: free offset {free_offset} out of range"
            )
        # The header itself is not covered by the payload checksum, so
        # the slot count gets its own structural check: the directory
        # must fit between the free region and the end of the page.
        if SLOT_SIZE * n_slots > PAGE_SIZE - free_offset:
            raise PageCorruptionError(
                f"page {expected_page_id}: slot count {n_slots} overlaps the "
                f"record area (free offset {free_offset})"
            )
