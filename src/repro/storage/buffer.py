"""LRU buffer pool with pin counts and hit/miss accounting.

The paper's experiments run with a 32 MB buffer pool over 8 KB pages
(Sec. 6) — 4096 frames — deliberately smaller than the data set so that
plans which touch more data pay for it.  :class:`BufferPool` reproduces
that: page requests go through the pool, hits are free, misses cost a
physical read, and dirty pages are written back on eviction.

Pinning follows the classic protocol: a pinned page is never evicted;
callers holding raw references across operations pin first and unpin
when done.  Most single-record reads use :meth:`get_page` without
pinning, which is safe because the store copies what it needs out of the
page before the next pool call.

The pool is thread-safe: an ``RLock`` guards the frame map, pin counts,
and counters, so many reader threads (the query service's worker pool)
can share one pool.  A miss holds the lock across the physical read —
misses serialize, hits on other threads wait — which is the simple,
correct discipline; the service layer's result cache is what takes
pressure off the miss path under concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager

from ..errors import BufferPoolError, StorageError, TransientIOError
from .disk import DiskManager
from .page import PAGE_SIZE, Page

DEFAULT_POOL_BYTES = 32 * 1024 * 1024  # the paper's 32 MB
DEFAULT_POOL_FRAMES = DEFAULT_POOL_BYTES // PAGE_SIZE

#: Bounded retry for transient physical-read faults: total attempts,
#: and the base of the exponential backoff between them.
READ_RETRY_ATTEMPTS = 3
READ_RETRY_BACKOFF_SECONDS = 0.001


class BufferStatistics:
    """Counters for logical page requests against the pool."""

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "dirty_writebacks",
        "transient_retries",
        "transient_failures",
    )

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.transient_retries = 0
        self.transient_failures = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.transient_retries = 0
        self.transient_failures = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_writebacks": self.dirty_writebacks,
            "transient_retries": self.transient_retries,
            "transient_failures": self.transient_failures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BufferStatistics hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions}>"
        )


class _Frame:
    __slots__ = ("page", "pin_count")

    def __init__(self, page: Page):
        self.page = page
        self.pin_count = 0


class BufferPool:
    """Fixed-capacity page cache in front of a :class:`DiskManager`."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_POOL_FRAMES,
        retry_attempts: int = READ_RETRY_ATTEMPTS,
        retry_backoff: float = READ_RETRY_BACKOFF_SECONDS,
    ):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.retry_attempts = max(1, retry_attempts)
        self.retry_backoff = retry_backoff
        self.counters = BufferStatistics()
        # OrderedDict in LRU order: least-recently-used first.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        # Reentrant: pin() calls get_page() under the same lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self):
        """An immutable snapshot of the pool counters.

        Counters only move forward; they are never reset implicitly (a
        reopened database starts a fresh pool, but an open pool's
        history survives until :meth:`reset_stats`).  Take snapshots
        before and after a unit of work and subtract for deltas.
        """
        from ..observability.counters import CounterSnapshot

        with self._lock:
            return CounterSnapshot(self.counters.snapshot())

    def reset_stats(self) -> None:
        """Explicitly zero the pool counters."""
        with self._lock:
            self.counters.reset()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_page(self, page_id: int) -> Page:
        """Return the page, fetching it on a miss.  Updates LRU order."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.counters.hits += 1
                self._frames.move_to_end(page_id)
                return frame.page
            self.counters.misses += 1
            page = self._read_with_retry(page_id)
            self._admit(page)
            return page

    def _read_with_retry(self, page_id: int) -> Page:
        """One physical read with bounded retry-with-backoff on
        transient faults (flaky device, injected error); corruption is
        never retried — a bad checksum will not heal."""
        delay = self.retry_backoff
        for attempt in range(self.retry_attempts):
            try:
                return self.disk.read_page(page_id)
            except TransientIOError:
                if attempt + 1 == self.retry_attempts:
                    self.counters.transient_failures += 1
                    raise
                self.counters.transient_retries += 1
                if delay > 0:
                    time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def put_new_page(self, page: Page) -> None:
        """Admit a freshly built page (bulk load path) without a disk read."""
        with self._lock:
            if page.page_id in self._frames:
                raise BufferPoolError(f"page {page.page_id} already buffered")
            page.dirty = True
            self._admit(page)

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = _Frame(page)

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.page.dirty:
                    self.disk.write_page(frame.page)
                    self.counters.dirty_writebacks += 1
                del self._frames[page_id]
                self.counters.evictions += 1
                return
        raise BufferPoolError("all frames are pinned; cannot evict")

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> Page:
        """Fetch and pin; the page will survive until unpinned."""
        with self._lock:
            page = self.get_page(page_id)
            self._frames[page_id].pin_count += 1
            return page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count == 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.page.dirty = True

    @contextmanager
    def pinned(self, page_id: int):
        """Pin for the duration of a ``with`` block.

        The unpin runs in ``finally``, so a query cancelled or timed
        out mid-block (see :mod:`repro.cancellation`) releases its pin
        on the way out — the invariant the service stress tests assert.
        """
        page = self.pin(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id)

    def pinned_count(self) -> int:
        with self._lock:
            return sum(1 for frame in self._frames.values() if frame.pin_count > 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        """Write every dirty buffered page back to disk."""
        with self._lock:
            for frame in self._frames.values():
                if frame.page.dirty:
                    self.disk.write_page(frame.page)
            self.disk.flush()

    def discard_all(self) -> None:
        """Drop every frame *without* writing dirty pages back.

        Crash-recovery rollback uses this: the dirty pages belong to an
        aborted load and must not reach the disk.
        """
        with self._lock:
            if self.pinned_count():
                raise BufferPoolError("cannot discard the pool while pages are pinned")
            self._frames.clear()

    def clear(self) -> None:
        """Drop all unpinned frames (flushing dirty ones).

        Benchmarks call this between runs for a cold-cache start.
        """
        with self._lock:
            if self.pinned_count():
                raise BufferPoolError("cannot clear the pool while pages are pinned")
            self.flush_all()
            self._frames.clear()

    def resize(self, capacity: int) -> None:
        """Change the frame budget, evicting as needed (ablation A3)."""
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        with self._lock:
            self.capacity = capacity
            while len(self._frames) > self.capacity:
                self._evict_one()

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames
