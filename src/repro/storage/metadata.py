"""Metadata manager: the tag symbol table and the document catalog.

TIMBER's Metadata Manager (Fig. 12) records schema-level facts.  Here it
owns:

* the **symbol table** interning tag names to small integers (records
  store ``tag_sym``, indexes key on it);
* the **document catalog** mapping document names to their root nid and
  nid range;
* the **page directory**: the first nid stored on each data page, which
  is what lets the store translate an nid to a (page, slot) address with
  one binary search.

Everything serializes to a JSON sidecar (``meta.json``) in the database
directory, so a store can be closed and reopened.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass

from ..errors import DatabaseError


@dataclass(frozen=True)
class DocumentInfo:
    """Catalog entry for one loaded document."""

    doc_id: int
    name: str
    root_nid: int
    n_nodes: int

    @property
    def first_nid(self) -> int:
        return self.root_nid

    @property
    def last_nid(self) -> int:
        return self.root_nid + self.n_nodes - 1


class SymbolTable:
    """Bidirectional tag-name <-> symbol interning."""

    def __init__(self):
        self._symbols: list[str] = []
        self._by_name: dict[str, int] = {}

    def intern(self, name: str) -> int:
        """Return the symbol for ``name``, creating one if new."""
        sym = self._by_name.get(name)
        if sym is None:
            sym = len(self._symbols)
            self._symbols.append(name)
            self._by_name[name] = sym
        return sym

    def lookup(self, name: str) -> int | None:
        """Symbol for ``name`` or ``None`` if never interned."""
        return self._by_name.get(name)

    def name(self, sym: int) -> str:
        return self._symbols[sym]

    def __len__(self) -> int:
        return len(self._symbols)

    def names(self) -> list[str]:
        return list(self._symbols)

    def to_list(self) -> list[str]:
        return list(self._symbols)

    @classmethod
    def from_list(cls, symbols: list[str]) -> "SymbolTable":
        table = cls()
        for name in symbols:
            table.intern(name)
        return table


class MetadataManager:
    """Catalog + symbol table + page directory, JSON-persistable."""

    def __init__(self):
        self.symbols = SymbolTable()
        self.documents: dict[int, DocumentInfo] = {}
        self._documents_by_name: dict[str, int] = {}
        # Parallel arrays: data page ids in allocation order and the first
        # nid each one stores.
        self.page_ids: list[int] = []
        self.page_first_nids: list[int] = []
        self.next_nid = 0
        # Global (start, end) label counter: documents get disjoint label
        # ranges so structural joins across the store never see
        # overlapping regions from different documents.
        self.next_label = 0
        # Pages recovery deemed unrecoverable: reads raise RecoveryError
        # instead of surfacing raw corruption, and repair drops the
        # documents that referenced them.
        self.quarantined_pages: set[int] = set()

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def register_document(self, name: str, root_nid: int, n_nodes: int) -> DocumentInfo:
        if name in self._documents_by_name:
            raise DatabaseError(f"document {name!r} already exists")
        doc_id = len(self.documents)
        info = DocumentInfo(doc_id=doc_id, name=name, root_nid=root_nid, n_nodes=n_nodes)
        self.documents[doc_id] = info
        self._documents_by_name[name] = doc_id
        return info

    def resize_document(self, name: str, n_nodes: int) -> DocumentInfo:
        """Grow a document's node count (streaming ingest: each batch
        appends a contiguous nid range to the same document).  The
        catalog entry is frozen, so growth replaces it."""
        doc_id = self._documents_by_name.get(name)
        if doc_id is None:
            raise DatabaseError(f"no document named {name!r}")
        old = self.documents[doc_id]
        if n_nodes < old.n_nodes:
            raise DatabaseError(
                f"document {name!r} cannot shrink from {old.n_nodes} to {n_nodes} nodes"
            )
        info = DocumentInfo(
            doc_id=doc_id, name=name, root_nid=old.root_nid, n_nodes=n_nodes
        )
        self.documents[doc_id] = info
        return info

    def document_by_name(self, name: str) -> DocumentInfo:
        doc_id = self._documents_by_name.get(name)
        if doc_id is None:
            raise DatabaseError(f"no document named {name!r}")
        return self.documents[doc_id]

    def document(self, doc_id: int) -> DocumentInfo:
        info = self.documents.get(doc_id)
        if info is None:
            raise DatabaseError(f"no document with id {doc_id}")
        return info

    def remove_document(self, name: str) -> DocumentInfo:
        """Drop a document from the catalog.

        The nid range and pages remain allocated (the store is
        bulk-loaded; space is not reclaimed) but the document becomes
        invisible to scans, indexes, and queries.
        """
        doc_id = self._documents_by_name.pop(name, None)
        if doc_id is None:
            raise DatabaseError(f"no document named {name!r}")
        return self.documents.pop(doc_id)

    def document_of_nid(self, nid: int) -> DocumentInfo:
        """The document whose nid range contains ``nid``."""
        for info in self.documents.values():
            if info.first_nid <= nid <= info.last_nid:
                return info
        raise DatabaseError(f"nid {nid} belongs to no document")

    # ------------------------------------------------------------------
    # Page directory
    # ------------------------------------------------------------------
    def register_page(self, page_id: int, first_nid: int) -> None:
        self.page_ids.append(page_id)
        self.page_first_nids.append(first_nid)

    def locate(self, nid: int) -> tuple[int, int]:
        """Translate an nid to ``(page_id, slot)``."""
        if not 0 <= nid < self.next_nid:
            raise DatabaseError(f"nid {nid} out of range (have {self.next_nid})")
        index = bisect_right(self.page_first_nids, nid) - 1
        page_id = self.page_ids[index]
        slot = nid - self.page_first_nids[index]
        return page_id, slot

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        payload = {
            "symbols": self.symbols.to_list(),
            "documents": [
                {
                    "doc_id": info.doc_id,
                    "name": info.name,
                    "root_nid": info.root_nid,
                    "n_nodes": info.n_nodes,
                }
                for info in self.documents.values()
            ],
            "page_ids": self.page_ids,
            "page_first_nids": self.page_first_nids,
            "next_nid": self.next_nid,
            "next_label": self.next_label,
            "quarantined_pages": sorted(self.quarantined_pages),
        }
        # Durable atomic replace: a crash mid-save leaves the previous
        # metadata intact (the commit point of every journaled write).
        from .journal import atomic_write_json

        atomic_write_json(path, payload)

    @classmethod
    def load(cls, path: str) -> "MetadataManager":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        manager = cls()
        manager.symbols = SymbolTable.from_list(payload["symbols"])
        for entry in payload["documents"]:
            info = DocumentInfo(
                doc_id=entry["doc_id"],
                name=entry["name"],
                root_nid=entry["root_nid"],
                n_nodes=entry["n_nodes"],
            )
            manager.documents[info.doc_id] = info
            manager._documents_by_name[info.name] = info.doc_id
        manager.page_ids = list(payload["page_ids"])
        manager.page_first_nids = list(payload["page_first_nids"])
        manager.next_nid = payload["next_nid"]
        manager.next_label = payload.get("next_label", 0)
        manager.quarantined_pages = set(payload.get("quarantined_pages", ()))
        return manager
