"""Intent journal and crash recovery for directory-backed stores.

The store's two multi-file mutations — bulk load and compaction — are
made crash-consistent with a write-ahead *intent journal* plus the
atomicity of ``os.replace``:

**Bulk load** appends pages to ``data.pages`` and then commits by
atomically replacing ``meta.json`` (whose catalog is the source of
truth — pages the catalog does not reference are garbage).  Protocol::

    1. write journal {op: load, base_pages, new_next_nid}   (fsync)
    2. append + flush the new pages; fsync data.pages
    3. atomically replace meta.json                          <- COMMIT
    4. remove the journal

A crash anywhere leaves one of two recoverable states: the journal
present with the *old* meta (steps 1–2: roll back by truncating
``data.pages`` to ``base_pages``), or the journal present with the
*new* meta (between 3 and 4: the load committed; just clear the
journal).  The commit test is ``meta.next_nid == journal.new_next_nid``.

**Compaction** stages a complete fresh store (``data.pages`` +
``meta.json``) in a scratch subdirectory, fsyncs it, journals the
intent, then swaps the files in with two ``os.replace`` calls::

    1. build + fsync <dir>/<stage>/{data.pages, meta.json}
    2. write journal {op: compact, stage_dir}                (fsync)
    3. replace data.pages from the stage
    4. replace meta.json  from the stage                     <- COMMIT
    5. remove the journal; remove the stage directory

With the journal present the stage is known complete, so recovery
always rolls *forward*: any staged file still present is swapped in,
then the journal is cleared.  A stage directory without a journal is a
crash during step 1 — removed wholesale, the old store untouched.

Crash points (:data:`LOAD_CRASH_POINTS`, :data:`COMPACT_CRASH_POINTS`)
name the instants *after* each step; the crash-enumeration suite kills
the store at every one and asserts a clean reopen.
"""

from __future__ import annotations

import json
import os
import shutil

from ..errors import RecoveryError
from .page import PAGE_SIZE

JOURNAL_FILE = "journal.json"
#: Scratch subdirectory compaction stages its fresh store in.
COMPACT_STAGE_DIR = ".compact.stage"

#: Crash points fired by the journaled bulk-load path, in order.
LOAD_CRASH_POINTS = (
    "load.journal_written",
    "load.pages_synced",
    "load.meta_committed",
    "load.journal_cleared",
)

#: Crash points fired by the journaled streaming-ingest batch commit,
#: in order.  Same protocol as the bulk load, once per batch, plus a
#: physical undo image of the document root's page (the only committed
#: page a batch mutates in place — the root's ``end`` label advances).
INGEST_CRASH_POINTS = (
    "ingest.journal_written",
    "ingest.pages_synced",
    "ingest.meta_committed",
    "ingest.journal_cleared",
)

#: Crash points fired by the journaled compaction path, in order.
COMPACT_CRASH_POINTS = (
    "compact.staged",
    "compact.journal_written",
    "compact.data_swapped",
    "compact.meta_committed",
    "compact.journal_cleared",
)


# ----------------------------------------------------------------------
# fsync discipline
# ----------------------------------------------------------------------
def fsync_directory(directory: str) -> None:
    """fsync a directory so renames within it are durable (best effort:
    some platforms refuse directory handles)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON durably: temp file, flush+fsync, atomic rename,
    directory fsync."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(os.path.dirname(path) or ".")


# ----------------------------------------------------------------------
# Journal file
# ----------------------------------------------------------------------
def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_FILE)


def write_journal(directory: str, payload: dict) -> None:
    atomic_write_json(journal_path(directory), payload)


def read_journal(directory: str) -> dict | None:
    """The pending journal entry, or ``None`` when no load/compact was
    in flight.  The journal is written atomically, so a malformed one
    means outside interference — fail loudly."""
    path = journal_path(directory)
    if not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"unreadable journal {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "op" not in payload:
        raise RecoveryError(f"malformed journal {path!r}: {payload!r}")
    return payload


def clear_journal(directory: str) -> None:
    path = journal_path(directory)
    if os.path.exists(path):
        os.remove(path)
    fsync_directory(directory)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def recover_directory(directory: str, recovery_counters=None) -> str | None:
    """Bring a store directory back to a consistent state after a crash.

    Runs *before* any store file is opened.  Returns the action taken
    (``"load-rollback"``, ``"load-rollforward"``, ``"compact-rollforward"``,
    ``"stage-cleanup"``) or ``None`` when the directory was clean.
    Raises :class:`RecoveryError` on states recovery cannot explain.
    """
    entry = read_journal(directory)
    action: str | None = None
    if entry is None:
        # No intent pending: stray staging/temp files are crash debris
        # from before the journal was written — safe to drop.
        stage = os.path.join(directory, COMPACT_STAGE_DIR)
        if os.path.isdir(stage):
            shutil.rmtree(stage)
            action = "stage-cleanup"
        _remove_stray_tmp(directory)
        if action and recovery_counters is not None:
            recovery_counters.recoveries += 1
        return action

    op = entry.get("op")
    if op == "load":
        action = _recover_load(directory, entry)
    elif op == "ingest":
        action = _recover_ingest(directory, entry)
    elif op == "compact":
        action = _recover_compact(directory, entry)
    else:
        raise RecoveryError(f"journal names unknown operation {op!r}")
    if recovery_counters is not None:
        recovery_counters.recoveries += 1
        if action.endswith("rollback"):
            recovery_counters.rollbacks += 1
        else:
            recovery_counters.rollforwards += 1
    return action


def _recover_load(directory: str, entry: dict) -> str:
    from .store import DATA_FILE, META_FILE  # local import: no cycle at module load

    meta_path = os.path.join(directory, META_FILE)
    data_path = os.path.join(directory, DATA_FILE)
    committed_next_nid = 0
    if os.path.exists(meta_path):
        try:
            with open(meta_path, encoding="utf-8") as handle:
                committed_next_nid = json.load(handle).get("next_nid", 0)
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"unreadable metadata {meta_path!r}: {exc}") from exc

    if committed_next_nid == entry.get("new_next_nid"):
        # The meta replace (commit point) happened; only the journal
        # removal was lost.  The pages were fsynced before commit.
        clear_journal(directory)
        return "load-rollforward"

    # Not committed: drop every page appended past the journaled base.
    base_pages = int(entry.get("base_pages", 0))
    if os.path.exists(data_path):
        target = base_pages * PAGE_SIZE
        size = os.path.getsize(data_path)
        if size < target:
            raise RecoveryError(
                f"{data_path}: {size} bytes but the journal promises "
                f"{base_pages} committed pages"
            )
        if size > target:
            with open(data_path, "r+b") as handle:
                handle.truncate(target)
                handle.flush()
                os.fsync(handle.fileno())
    elif base_pages:
        raise RecoveryError(
            f"{data_path} is missing but the journal promises {base_pages} pages"
        )
    clear_journal(directory)
    return "load-rollback"


def _recover_ingest(directory: str, entry: dict) -> str:
    """Recover an interrupted streaming-ingest batch commit.

    The commit test is the same as the bulk load's: the atomically
    replaced ``meta.json`` carries the batch's ``new_next_nid`` iff the
    commit point was reached.  Rollback additionally restores the
    journaled pre-image of the document root's page — the one committed
    page the batch mutated in place (advancing the root's ``end``
    label), which a crash may have left torn or already rewritten.
    """
    from .store import DATA_FILE, META_FILE  # local import: no cycle at module load

    meta_path = os.path.join(directory, META_FILE)
    data_path = os.path.join(directory, DATA_FILE)
    committed_next_nid = 0
    if os.path.exists(meta_path):
        try:
            with open(meta_path, encoding="utf-8") as handle:
                committed_next_nid = json.load(handle).get("next_nid", 0)
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"unreadable metadata {meta_path!r}: {exc}") from exc

    if committed_next_nid == entry.get("new_next_nid"):
        clear_journal(directory)
        return "ingest-rollforward"

    base_pages = int(entry.get("base_pages", 0))
    root_page_id = entry.get("root_page_id")
    root_page_hex = entry.get("root_page_hex")
    if not os.path.exists(data_path):
        if base_pages:
            raise RecoveryError(
                f"{data_path} is missing but the journal promises {base_pages} pages"
            )
        clear_journal(directory)
        return "ingest-rollback"
    target = base_pages * PAGE_SIZE
    size = os.path.getsize(data_path)
    if size < target:
        raise RecoveryError(
            f"{data_path}: {size} bytes but the journal promises "
            f"{base_pages} committed pages"
        )
    with open(data_path, "r+b") as handle:
        if size > target:
            handle.truncate(target)
        if root_page_hex is not None and root_page_id is not None:
            image = bytes.fromhex(root_page_hex)
            if len(image) != PAGE_SIZE:
                raise RecoveryError(
                    f"journal root-page image is {len(image)} bytes, "
                    f"expected {PAGE_SIZE}"
                )
            if (int(root_page_id) + 1) * PAGE_SIZE > target:
                raise RecoveryError(
                    f"journal root page {root_page_id} lies past the "
                    f"{base_pages} committed pages"
                )
            handle.seek(int(root_page_id) * PAGE_SIZE)
            handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    clear_journal(directory)
    return "ingest-rollback"


def _recover_compact(directory: str, entry: dict) -> str:
    from .store import DATA_FILE, META_FILE

    stage = os.path.join(directory, entry.get("stage_dir", COMPACT_STAGE_DIR))
    # The journal is only written once the stage is complete and
    # durable, so recovery always rolls the swap forward.
    for filename in (DATA_FILE, META_FILE):
        staged = os.path.join(stage, filename)
        if os.path.exists(staged):
            os.replace(staged, os.path.join(directory, filename))
    fsync_directory(directory)
    clear_journal(directory)
    if os.path.isdir(stage):
        shutil.rmtree(stage)
    return "compact-rollforward"


def _remove_stray_tmp(directory: str) -> None:
    """Drop ``*.tmp`` leftovers from interrupted atomic writes."""
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if name.endswith(".tmp"):
            try:
                os.remove(os.path.join(directory, name))
            except OSError:  # pragma: no cover - race with other cleanup
                pass
