"""The node store — TIMBER's Data Manager on top of the page substrate.

Documents are bulk-loaded: a parsed :class:`~repro.xmlmodel.node.XMLNode`
tree is labelled with ``(start, end, level)`` containment labels in one
traversal, encoded into node records, and packed densely into slotted
pages in document order.  Because nids equal preorder positions, a
node's subtree is the contiguous nid range ``[nid, nid + size)`` and
children are enumerated by hopping over sibling subtrees — every hop is
one record lookup through the buffer pool, which is exactly the cost
model the paper's evaluation reasons about.

The store separates *structural* access (records, labels, children) from
*value* access (``content``): Sec. 5.3 argues grouping should run on
identifiers and only populate values late.  The statistics object counts
both kinds of access so benchmarks can report them.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Iterator

from ..cancellation import checkpoint
from ..errors import DatabaseError, RecoveryError, StorageError, TransientIOError
from ..xmlmodel.node import XMLNode
from ..xmlmodel.parse import parse_document
from .buffer import DEFAULT_POOL_FRAMES, BufferPool
from .disk import DiskManager
from .faults import FaultPlan, FaultyDiskManager, maybe_crash, plan_from_env
from .journal import (
    COMPACT_STAGE_DIR,
    clear_journal,
    recover_directory,
    write_journal,
)
from .metadata import DocumentInfo, MetadataManager
from .page import Page
from .records import NO_PARENT, NodeRecord, decode_record, encode_record

DATA_FILE = "data.pages"
META_FILE = "meta.json"


class StoreStatistics:
    """Logical access counters for the cost model."""

    __slots__ = ("record_lookups", "value_lookups", "nodes_materialized")

    def __init__(self):
        self.record_lookups = 0
        self.value_lookups = 0
        self.nodes_materialized = 0

    def reset(self) -> None:
        self.record_lookups = 0
        self.value_lookups = 0
        self.nodes_materialized = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "record_lookups": self.record_lookups,
            "value_lookups": self.value_lookups,
            "nodes_materialized": self.nodes_materialized,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StoreStatistics records={self.record_lookups} "
            f"values={self.value_lookups} materialized={self.nodes_materialized}>"
        )


class IngestStatistics:
    """Counters for the streaming-ingest write path."""

    __slots__ = (
        "batches_committed",
        "nodes_streamed",
        "ingests_started",
        "ingests_finished",
        "ingests_aborted",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {
            "ingest_batches_committed": self.batches_committed,
            "ingest_nodes_streamed": self.nodes_streamed,
            "ingests_started": self.ingests_started,
            "ingests_finished": self.ingests_finished,
            "ingests_aborted": self.ingests_aborted,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = " ".join(f"{n}={getattr(self, n)}" for n in self.__slots__)
        return f"<IngestStatistics {inner}>"


class RecoveryStatistics:
    """Counters for crash-recovery and repair work done by this store."""

    __slots__ = (
        "recoveries",
        "rollbacks",
        "rollforwards",
        "pages_quarantined",
        "documents_dropped",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {
            "recoveries": self.recoveries,
            "recovery_rollbacks": self.rollbacks,
            "recovery_rollforwards": self.rollforwards,
            "pages_quarantined": self.pages_quarantined,
            "documents_dropped": self.documents_dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = " ".join(f"{n}={getattr(self, n)}" for n in self.__slots__)
        return f"<RecoveryStatistics {inner}>"


@dataclass
class VerifyReport:
    """Outcome of :meth:`NodeStore.verify` — the store's health check."""

    pages_checked: int = 0
    corrupt_pages: list[int] = field(default_factory=list)
    quarantined_pages: list[int] = field(default_factory=list)
    affected_documents: list[str] = field(default_factory=list)
    meta_problems: list[str] = field(default_factory=list)
    recovery_action: str | None = None  # what recovery did on open
    index_fresh: bool | None = None  # None = not checked at this layer

    @property
    def ok(self) -> bool:
        return not self.corrupt_pages and not self.meta_problems

    def render(self) -> str:
        lines = [
            f"pages: {self.pages_checked} checked, "
            f"{len(self.corrupt_pages)} corrupt, "
            f"{len(self.quarantined_pages)} quarantined"
        ]
        if self.corrupt_pages:
            lines.append(f"corrupt pages: {self.corrupt_pages}")
        if self.affected_documents:
            lines.append(f"affected documents: {self.affected_documents}")
        lines.append("metadata: " + ("OK" if not self.meta_problems else "; ".join(self.meta_problems)))
        if self.recovery_action:
            lines.append(f"recovery on open: {self.recovery_action}")
        if self.index_fresh is not None:
            lines.append("indexes: " + ("fresh" if self.index_fresh else "stale (will rebuild)"))
        lines.append("verdict: " + ("OK" if self.ok else "CORRUPT"))
        return "\n".join(lines)


@dataclass
class RepairReport:
    """Outcome of :meth:`NodeStore.repair`."""

    verify: VerifyReport = field(default_factory=VerifyReport)
    quarantined_pages: list[int] = field(default_factory=list)
    dropped_documents: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined_pages and not self.dropped_documents

    def render(self) -> str:
        if self.clean:
            return "repair: nothing to do (store is clean)"
        return (
            f"repair: quarantined pages {self.quarantined_pages}, "
            f"dropped documents {self.dropped_documents}"
        )


class NodeStore:
    """Page-backed store of labelled XML nodes."""

    def __init__(
        self,
        directory: str | None = None,
        pool_frames: int = DEFAULT_POOL_FRAMES,
        fault_plan: FaultPlan | None = None,
        degraded: bool = False,
    ):
        """Create (or open) a store.

        ``directory=None`` gives an in-memory store: same code paths and
        counters, no files.  With a directory, ``data.pages`` and
        ``meta.json`` are created there, and an existing store at that
        location is reopened — after journal-driven crash recovery when
        a bulk load or compaction was interrupted.

        ``fault_plan`` wraps the disk manager in a
        :class:`~repro.storage.faults.FaultyDiskManager` (tests, CI);
        when omitted, the ``REPRO_FAULT_PLAN`` environment variable is
        consulted.  ``degraded=True`` additionally quarantines any
        unreadable pages on open (dropping the documents they carried)
        instead of letting reads fail later.
        """
        self.directory = directory
        self._closed = False
        #: Monotonic data-generation counter: bumped on every mutation
        #: of the stored data (load, drop, compact, repair).  The
        #: service layer keys its result cache on it, so any mutation
        #: invalidates all cached results without a scan.
        self.generation = 0
        self.fault_plan = fault_plan if fault_plan is not None else plan_from_env()
        self.recovery = RecoveryStatistics()
        self._recovery_action: str | None = None
        if directory is None:
            self.disk = self._open_disk(None)
            self.meta = MetadataManager()
        else:
            os.makedirs(directory, exist_ok=True)
            # Recovery works on the raw files and must run before the
            # disk manager opens them (a torn tail page makes the file
            # size invalid until it is truncated away).
            self._recovery_action = recover_directory(directory, self.recovery)
            data_path = os.path.join(directory, DATA_FILE)
            meta_path = os.path.join(directory, META_FILE)
            self.disk = self._open_disk(data_path)
            if os.path.exists(meta_path):
                self.meta = MetadataManager.load(meta_path)
            else:
                self.meta = MetadataManager()
        self.pool = BufferPool(self.disk, capacity=pool_frames)
        self.counters = StoreStatistics()
        self.ingest_stats = IngestStatistics()
        # At most one streaming ingest may run at a time: its document
        # owns a contiguous nid range and a disjoint label region, so no
        # other mutation may interleave between its batches.
        self._active_ingest: "StoreIngest | None" = None
        if degraded and directory is not None:
            self.repair()

    def _check_no_ingest(self, operation: str) -> None:
        if self._active_ingest is not None:
            raise DatabaseError(
                f"cannot {operation} while a streaming ingest of "
                f"{self._active_ingest.name!r} is active"
            )

    def _open_disk(self, path: str | None) -> DiskManager:
        disk = DiskManager(path)
        if self.fault_plan is not None:
            return FaultyDiskManager(disk, self.fault_plan)  # type: ignore[return-value]
        return disk

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load_tree(self, root: XMLNode, name: str) -> DocumentInfo:
        """Label, encode, and store a document tree under ``name``.

        Directory-backed stores run the load under an intent journal:
        pages are appended and fsynced, then ``meta.json`` is atomically
        replaced (the commit point), then the journal is cleared.  A
        crash at any step leaves a state :func:`~repro.storage.journal.
        recover_directory` restores on the next open — either the
        complete document or a clean rollback, never a torn store.
        """
        self._check_no_ingest("load a document")
        if name in self.meta._documents_by_name:
            raise DatabaseError(f"document {name!r} already exists")
        if self.directory is None:
            records = self._label_tree(root)
            self._pack_records(records)
            info = self.meta.register_document(name, records[0].nid, len(records))
            self.flush()
            self.generation += 1
            return info
        info = self._load_tree_journaled(root, name)
        self.generation += 1
        return info

    def _load_tree_journaled(self, root: XMLNode, name: str) -> DocumentInfo:
        base_pages = self.disk.n_pages
        base_next_nid = self.meta.next_nid
        base_next_label = self.meta.next_label
        records = self._label_tree(root)
        write_journal(
            self.directory,
            {
                "op": "load",
                "name": name,
                "base_pages": base_pages,
                "base_next_nid": base_next_nid,
                "new_next_nid": self.meta.next_nid,
            },
        )
        maybe_crash(self.fault_plan, "load.journal_written")
        try:
            self._pack_records(records)
            info = self.meta.register_document(name, records[0].nid, len(records))
            self.pool.flush_all()
            self.disk.sync()
            maybe_crash(self.fault_plan, "load.pages_synced")
            self.meta.save(os.path.join(self.directory, META_FILE))  # COMMIT
            maybe_crash(self.fault_plan, "load.meta_committed")
        except Exception:
            # A real failure mid-load (not a simulated crash, which must
            # leave the torn state for reopen-time recovery): roll back
            # in-process so the open store stays consistent.
            self._abort_load(base_pages, base_next_nid, base_next_label, name)
            raise
        clear_journal(self.directory)
        maybe_crash(self.fault_plan, "load.journal_cleared")
        return info

    def _abort_load(
        self, base_pages: int, base_next_nid: int, base_next_label: int, name: str
    ) -> None:
        try:
            self.pool.discard_all()
            self.disk.truncate(base_pages)
        except StorageError:  # pragma: no cover - best-effort rollback
            pass
        # Rebuild the in-memory metadata from the committed on-disk
        # state (the load never committed, so the file is the old one).
        meta_path = os.path.join(self.directory, META_FILE)
        if os.path.exists(meta_path):
            self.meta = MetadataManager.load(meta_path)
        else:
            self.meta = MetadataManager()
        self.meta.next_nid = min(self.meta.next_nid, base_next_nid)
        self.meta.next_label = min(self.meta.next_label, base_next_label)
        clear_journal(self.directory)

    def load_text(self, text: str, name: str) -> DocumentInfo:
        """Parse XML text and store it."""
        return self.load_tree(parse_document(text), name)

    def load_file(self, path: str, name: str | None = None) -> DocumentInfo:
        """Load an XML file; a missing or unreadable path raises
        :class:`DatabaseError` naming the path, never a bare
        ``FileNotFoundError``."""
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise DatabaseError(f"cannot read document file {path!r}: {exc}") from exc
        return self.load_text(text, name or os.path.basename(path))

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def begin_ingest(self, root_shell: XMLNode, name: str) -> "StoreIngest":
        """Start a streaming ingest of one document.

        ``root_shell`` is the document root with its tag, attributes,
        and leading text but *no children*: batches of root children are
        appended through :meth:`StoreIngest.commit_batch`, each commit
        crash-consistent and immediately visible to readers.  The root's
        record is rewritten in place at every commit to advance its
        ``end`` label (an equal-length overwrite), so the shell's tag,
        attributes, and content are fixed for the whole stream.

        At most one ingest may be active per store; every other mutation
        (bulk load, drop, compact, repair) is rejected until it finishes
        or aborts.
        """
        self._check_no_ingest("start another ingest")
        if name in self.meta._documents_by_name:
            raise DatabaseError(f"document {name!r} already exists")
        if root_shell.children:
            raise DatabaseError(
                "streaming ingest takes a childless root shell; feed the "
                "children through commit_batch"
            )
        ingest = StoreIngest(self, root_shell, name)
        self._active_ingest = ingest
        self.ingest_stats.ingests_started += 1
        return ingest

    def _label_tree(self, root: XMLNode) -> list[NodeRecord]:
        """Assign nids and (start, end, level) labels in one traversal."""
        return self._label_forest([root], NO_PARENT, 0)

    def _label_forest(
        self, roots: list[XMLNode], parent_nid: int, base_level: int
    ) -> list[NodeRecord]:
        """Label a sequence of sibling subtrees in document order.

        The whole-document load labels ``[root]`` under ``NO_PARENT``;
        the streaming ingest labels each batch of root children under
        the already-stored document root's nid at level 1, continuing
        the same global nid/label counters.
        """
        first_nid = self.meta.next_nid
        counter = self.meta.next_label
        next_nid = first_nid
        records: list[NodeRecord | None] = []
        starts: dict[int, tuple[int, int, int]] = {}  # id(node) -> (nid, start, level)

        stack: list[tuple[XMLNode, int, int, bool]] = [
            (root, parent_nid, base_level, False) for root in reversed(roots)
        ]
        while stack:
            node, parent_nid, level, expanded = stack.pop()
            if not expanded:
                nid = next_nid
                next_nid += 1
                starts[id(node)] = (nid, counter, level)
                counter += 1
                records.append(None)
                stack.append((node, parent_nid, level, True))
                stack.extend((child, nid, level + 1, False) for child in reversed(node.children))
            else:
                nid, start, level_ = starts.pop(id(node))
                end = counter
                counter += 1
                records[nid - first_nid] = NodeRecord(
                    nid=nid,
                    parent=parent_nid,
                    tag_sym=self.meta.symbols.intern(node.tag),
                    start=start,
                    end=end,
                    level=level_,
                    content=node.content,
                    attributes=tuple(node.attributes.items()),
                )
                node.nid = nid

        # Hand out parent nids to the expanded pass: children were pushed
        # with the parent's nid already assigned, so every record is set.
        complete = [record for record in records if record is not None]
        if len(complete) != len(records):
            raise StorageError("internal error: labelling produced holes")
        self.meta.next_nid = next_nid
        self.meta.next_label = counter
        return complete

    def _pack_records(self, records: list[NodeRecord]) -> None:
        """Append encoded records densely onto fresh pages, in nid order."""
        page: Page | None = None
        for record in records:
            payload = encode_record(record)
            if page is None or len(payload) > page.free_space():
                if page is not None:
                    self.pool.put_new_page(page)
                page_id = self.disk.allocate_page()
                page = Page(page_id)
                if len(payload) > page.free_space():
                    raise StorageError(
                        f"node {record.nid}: record of {len(payload)} bytes "
                        "exceeds the page capacity"
                    )
                self.meta.register_page(page_id, record.nid)
            page.insert_record(payload)
        if page is not None:
            self.pool.put_new_page(page)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, nid: int) -> NodeRecord:
        """Fetch and decode the record for ``nid`` (one logical lookup)."""
        page_id, slot = self.meta.locate(nid)
        if page_id in self.meta.quarantined_pages:
            raise RecoveryError(
                f"nid {nid} lives on quarantined page {page_id} "
                "(unrecoverable after corruption; see NodeStore.repair)"
            )
        page = self.pool.get_page(page_id)
        self.counters.record_lookups += 1
        return decode_record(page.read_record(slot))

    def tag(self, nid: int) -> str:
        return self.meta.symbols.name(self.record(nid).tag_sym)

    def content(self, nid: int) -> str | None:
        """A *data value lookup* (Sec. 5.3): fetch the node's text value."""
        record = self.record(nid)
        self.counters.value_lookups += 1
        return record.content

    def label(self, nid: int) -> tuple[int, int, int]:
        """The ``(start, end, level)`` containment label."""
        record = self.record(nid)
        return (record.start, record.end, record.level)

    def parent(self, nid: int) -> int | None:
        parent = self.record(nid).parent
        return None if parent == NO_PARENT else parent

    def _subtree_count(self, record: NodeRecord) -> int:
        """Subtree size of ``record``, exact even for streamed roots.

        Non-root labels are dense (two per node), so the label-width
        formula is exact.  A document root ingested in batches abandons
        one ``end`` label per batch, widening its label range past
        ``2 * n_nodes`` — for roots the catalog's node count is the
        truth instead.
        """
        if record.parent != NO_PARENT:
            return record.subtree_node_count
        for info in self.meta.documents.values():
            if info.root_nid == record.nid:
                return info.n_nodes
        return record.subtree_node_count

    def subtree_node_count(self, nid: int) -> int:
        return self._subtree_count(self.record(nid))

    def subtree_nids(self, nid: int) -> range:
        """The contiguous nid range of the subtree rooted at ``nid``."""
        return range(nid, nid + self.subtree_node_count(nid))

    def children(self, nid: int) -> list[int]:
        """Child nids in document order (one lookup per child)."""
        record = self.record(nid)
        out: list[int] = []
        child = nid + 1
        last = nid + self._subtree_count(record) - 1
        while child <= last:
            out.append(child)
            child += self.record(child).subtree_node_count
        return out

    def is_ancestor(self, ancestor_nid: int, descendant_nid: int) -> bool:
        """Containment test straight off the labels."""
        a = self.record(ancestor_nid)
        d = self.record(descendant_nid)
        return a.start < d.start and d.end < a.end

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, doc_id: int | None = None) -> Iterator[NodeRecord]:
        """Full scan of the store (or of one document) in document order.

        This is the fallback the paper contrasts against index-assisted
        matching (Sec. 5.2) and is used by the scan-based matcher
        ablation.
        """
        if doc_id is None:
            # Only live documents: dropped ranges are garbage.
            for info in self.documents():
                for nid in range(info.first_nid, info.last_nid + 1):
                    checkpoint()
                    yield self.record(nid)
            return
        info = self.meta.document(doc_id)
        for nid in range(info.first_nid, info.last_nid + 1):
            checkpoint()
            yield self.record(nid)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, nid: int, with_content: bool = True) -> XMLNode:
        """Rebuild the subtree at ``nid`` as an in-memory tree.

        With ``with_content=False`` the structural shell is produced:
        tags and nids only, contents left unpopulated — the late
        materialization mode of Sec. 5.3.  Value lookups are counted per
        populated node.

        The root's page stays pinned for the duration: the traversal
        re-enters the pool once per record, and the anchor page must not
        be evicted out from under it by a concurrent query.  The pin is
        released on *every* exit path, including a deadline expiring at
        one of the per-node checkpoints.
        """
        root_record = self.record(nid)
        root_page_id, _ = self.meta.locate(nid)
        with self.pool.pinned(root_page_id):
            nodes: dict[int, XMLNode] = {}
            root_node: XMLNode | None = None
            for current in range(nid, nid + self._subtree_count(root_record)):
                checkpoint()
                record = root_record if current == nid else self.record(current)
                node = XMLNode(
                    self.meta.symbols.name(record.tag_sym),
                    content=record.content if with_content else None,
                    attributes=dict(record.attributes) or None,
                    nid=record.nid,
                )
                if with_content and record.content is not None:
                    self.counters.value_lookups += 1
                self.counters.nodes_materialized += 1
                nodes[current] = node
                if current == nid:
                    root_node = node
                else:
                    parent = nodes.get(record.parent)
                    if parent is None:
                        raise StorageError(
                            f"nid {current}: parent {record.parent} outside the subtree"
                        )
                    parent.append_child(node)
        assert root_node is not None
        return root_node

    def populate_content(self, node: XMLNode) -> XMLNode:
        """Fill in the contents of a shell tree in place (late population)."""
        for member in node.iter():
            if member.nid is not None and member.content is None:
                member.content = self.content(member.nid)
        return node

    # ------------------------------------------------------------------
    # Documents and lifecycle
    # ------------------------------------------------------------------
    def document(self, name: str) -> DocumentInfo:
        return self.meta.document_by_name(name)

    def drop_document(self, name: str) -> DocumentInfo:
        """Remove a document from the catalog (space is not reclaimed
        until :meth:`compact`)."""
        self._check_no_ingest("drop a document")
        info = self.meta.remove_document(name)
        self.flush()
        self.generation += 1
        return info

    def compact(self) -> "NodeStore":
        """Rebuild the store without garbage, reclaiming dropped space.

        Live documents are materialized, a fresh page file is bulk-loaded
        with fresh nids/labels, and — for directory-backed stores — the
        files are swapped in place.  Returns the compacted store (a new
        object; the old handle is closed).

        The directory swap is crash-consistent: the fresh store is
        staged in a scratch subdirectory and fsynced, the intent is
        journaled, and only then are ``data.pages`` and ``meta.json``
        replaced atomically.  A crash at any point either keeps the old
        store intact or rolls the swap forward on the next open.
        """
        self._check_no_ingest("compact")
        live = [
            (info.name, self.materialize(info.root_nid, with_content=True))
            for info in self.documents()
        ]
        if self.directory is None:
            fresh = NodeStore(
                None, pool_frames=self.pool.capacity, fault_plan=self.fault_plan
            )
            for name, root in live:
                fresh.load_tree(root, name)
            self.close()
            # The rebuilt store holds *different* nids for the same data:
            # any cached result keyed on the old generation is stale.
            fresh.generation = self.generation + 1
            return fresh
        directory = self.directory
        stage = os.path.join(directory, COMPACT_STAGE_DIR)
        if os.path.isdir(stage):
            shutil.rmtree(stage)
        staged = NodeStore(
            stage, pool_frames=self.pool.capacity, fault_plan=self.fault_plan
        )
        for name, root in live:
            staged.load_tree(root, name)
        staged.close()  # flush + fsync: the stage is complete and durable
        maybe_crash(self.fault_plan, "compact.staged")
        self.close()
        write_journal(directory, {"op": "compact", "stage_dir": COMPACT_STAGE_DIR})
        maybe_crash(self.fault_plan, "compact.journal_written")
        os.replace(os.path.join(stage, DATA_FILE), os.path.join(directory, DATA_FILE))
        maybe_crash(self.fault_plan, "compact.data_swapped")
        os.replace(os.path.join(stage, META_FILE), os.path.join(directory, META_FILE))
        maybe_crash(self.fault_plan, "compact.meta_committed")
        clear_journal(directory)
        maybe_crash(self.fault_plan, "compact.journal_cleared")
        shutil.rmtree(stage, ignore_errors=True)
        fresh = NodeStore(
            directory, pool_frames=self.pool.capacity, fault_plan=self.fault_plan
        )
        fresh.generation = self.generation + 1
        return fresh

    # ------------------------------------------------------------------
    # Verification and repair
    # ------------------------------------------------------------------
    def verify(self) -> VerifyReport:
        """Check every registered data page (checksum + structure) and
        the catalog's internal consistency.  Read-only; transient I/O
        faults are retried, corruption is reported, never raised."""
        report = VerifyReport(recovery_action=self._recovery_action)
        report.quarantined_pages = sorted(self.meta.quarantined_pages)
        for page_id in self.meta.page_ids:
            if page_id in self.meta.quarantined_pages:
                continue
            report.pages_checked += 1
            try:
                self._read_page_direct(page_id)
            except StorageError:
                report.corrupt_pages.append(page_id)
        bad_pages = set(report.corrupt_pages) | self.meta.quarantined_pages
        if bad_pages:
            report.affected_documents = [
                info.name
                for info in self.documents()
                if self._document_pages(info) & bad_pages
            ]
        report.meta_problems = self._check_meta()
        return report

    def _read_page_direct(self, page_id: int) -> Page:
        """One page straight from disk with the pool's bounded retry,
        bypassing the cache (verify must see the on-disk bytes)."""
        delay = self.pool.retry_backoff
        for attempt in range(self.pool.retry_attempts):
            try:
                return self.disk.read_page(page_id)
            except TransientIOError:
                if attempt + 1 == self.pool.retry_attempts:
                    raise
                self.pool.counters.transient_retries += 1
                if delay > 0:
                    time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _document_pages(self, info: DocumentInfo) -> set[int]:
        """The data pages holding any record of ``info``.

        Locating the range endpoints plus every page boundary inside
        the range covers all pages without touching every nid.
        """
        nids = {info.first_nid, info.last_nid}
        nids.update(
            first
            for first in self.meta.page_first_nids
            if info.first_nid <= first <= info.last_nid
        )
        return {self.meta.locate(nid)[0] for nid in nids}

    def _check_meta(self) -> list[str]:
        problems: list[str] = []
        if len(self.meta.page_ids) != len(self.meta.page_first_nids):
            problems.append("page directory arrays disagree in length")
        for info in self.documents():
            if info.last_nid >= self.meta.next_nid:
                problems.append(
                    f"document {info.name!r} range ends at {info.last_nid} "
                    f"but next_nid is {self.meta.next_nid}"
                )
        for page_id in self.meta.page_ids:
            if page_id >= self.disk.n_pages:
                problems.append(
                    f"page directory names page {page_id} but the file has "
                    f"{self.disk.n_pages} pages"
                )
        return problems

    def repair(self) -> RepairReport:
        """Quarantine unrecoverable pages and drop the documents that
        referenced them, leaving the rest of the store fully usable.

        Persisted indexes are invalidated (deleted) so the next open
        rebuilds them over the surviving documents.  Data on the
        quarantined pages is lost — the report says exactly what."""
        self._check_no_ingest("repair")
        verify = self.verify()
        report = RepairReport(verify=verify)
        if not verify.corrupt_pages:
            return report
        report.quarantined_pages = list(verify.corrupt_pages)
        self.meta.quarantined_pages.update(verify.corrupt_pages)
        self.recovery.pages_quarantined += len(verify.corrupt_pages)
        bad_pages = self.meta.quarantined_pages
        for info in list(self.documents()):
            if self._document_pages(info) & bad_pages:
                self.meta.remove_document(info.name)
                report.dropped_documents.append(info.name)
                self.recovery.documents_dropped += 1
        if self.directory is not None:
            self.meta.save(os.path.join(self.directory, META_FILE))
            index_path = os.path.join(self.directory, "indexes.pages")
            if os.path.exists(index_path):
                os.remove(index_path)
        self.generation += 1
        return report

    def documents(self) -> list[DocumentInfo]:
        return [self.meta.documents[doc_id] for doc_id in sorted(self.meta.documents)]

    def n_nodes(self) -> int:
        return self.meta.next_nid

    def stats(self):
        """One immutable merged snapshot of all counters (store, pool,
        disk).

        Snapshots never change after capture: compare two to get the
        work done in between.  Counters are zeroed only by an explicit
        :meth:`reset_stats` — never implicitly.
        """
        from ..observability.counters import CounterSnapshot

        merged: dict[str, int] = {}
        merged.update(self.counters.snapshot())
        merged.update(self.pool.counters.snapshot())
        merged.update(self.disk.counters.snapshot())
        merged.update(self.recovery.snapshot())
        merged.update(self.ingest_stats.snapshot())
        fault_counters = getattr(self.disk, "fault_counters", None)
        if fault_counters is not None:
            merged.update(fault_counters.snapshot())
        return CounterSnapshot(merged)

    def reset_stats(self) -> None:
        """Explicitly zero every counter (store, pool, disk).

        Recovery and fault-injection counters are deliberately *not*
        reset: they describe lifecycle events, not per-query work."""
        self.counters.reset()
        self.pool.reset_stats()
        self.disk.reset_stats()

    def reset_statistics(self) -> None:
        """Zero every counter before a measured run (alias kept for the
        benchmark harness and existing callers)."""
        self.reset_stats()

    def statistics(self) -> dict[str, int]:
        """All counters as a plain dict (mutable copy of :meth:`stats`)."""
        return self.stats().as_dict()

    def flush(self) -> None:
        """Write dirty pages and persist metadata."""
        self.pool.flush_all()
        if self.directory is not None:
            self.meta.save(os.path.join(self.directory, META_FILE))

    def close(self) -> None:
        """Flush and close.  Idempotent: double-close (or ``__exit__``
        after an explicit close) is a no-op."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        self.disk.close()

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StoreIngest:
    """One streaming ingest of a single document, batch by batch.

    Created by :meth:`NodeStore.begin_ingest`.  Each
    :meth:`commit_batch` appends a batch of root children as a
    contiguous nid range on fresh pages and rewrites the document
    root's record in place to advance its ``end`` label, so readers
    between batches always see a well-formed document covering exactly
    the committed batches.

    Directory-backed stores run every batch commit under the intent
    journal (op ``ingest``), extending the bulk-load protocol with a
    physical undo image of the root's page — the only committed page a
    batch mutates.  The commit point is the atomic ``meta.json``
    replace; a crash before it rolls the batch back on reopen, after it
    rolls forward.  Either way the store lands on a batch boundary.
    """

    def __init__(self, store: NodeStore, root_shell: XMLNode, name: str):
        self.store = store
        self.name = name
        self.root_shell = root_shell
        self.batches_committed = 0
        self.nodes_committed = 0  # includes the root once batch 1 commits
        self.root_nid: int | None = None
        self.root_page_id: int | None = None
        self.root_slot: int | None = None
        self._root_record: NodeRecord | None = None
        self._done = False
        # The last committed batch, exposed for incremental index
        # maintenance (the IndexManager folds exactly these records in).
        self.last_batch_records: list[NodeRecord] = []
        self.last_root_record: NodeRecord | None = None
        self.last_old_root: NodeRecord | None = None
        self.last_first_batch = False

    @property
    def active(self) -> bool:
        return not self._done

    @property
    def document(self) -> DocumentInfo:
        """Catalog entry as of the last committed batch."""
        return self.store.meta.document_by_name(self.name)

    def commit_batch(self, children: list[XMLNode]) -> DocumentInfo:
        """Durably append one batch of root children.

        The first batch also writes the root record (its ``end`` label
        set past this batch); later batches advance that ``end`` with an
        equal-length in-place overwrite.  On return the batch is
        committed, the store generation is bumped (readers' caches
        invalidate at batch granularity), and the catalog covers every
        node streamed so far.
        """
        if self._done:
            raise DatabaseError(f"ingest of {self.name!r} is already finished")
        if self.store._active_ingest is not self:
            raise DatabaseError(f"ingest of {self.name!r} is no longer active")
        store = self.store
        meta = store.meta
        if self.batches_committed and not children:
            return self.document
        base_pages = store.disk.n_pages
        base_next_nid = meta.next_nid
        base_next_label = meta.next_label
        first_batch = self.batches_committed == 0
        old_root = self._root_record
        old_info = None if first_batch else self.document

        # Label the batch, continuing the store-global nid/label
        # counters (the document's nid range stays contiguous and its
        # label region disjoint from every other document's).
        if first_batch:
            root_nid = meta.next_nid
            root_start = meta.next_label
            meta.next_nid += 1
            meta.next_label += 1
            child_records = store._label_forest(children, root_nid, 1)
            root_end = meta.next_label
            meta.next_label += 1
            shell = self.root_shell
            root_record = NodeRecord(
                nid=root_nid,
                parent=NO_PARENT,
                tag_sym=meta.symbols.intern(shell.tag),
                start=root_start,
                end=root_end,
                level=0,
                content=shell.content,
                attributes=tuple(shell.attributes.items()),
            )
            shell.nid = root_nid
            records = [root_record] + child_records
        else:
            child_records = store._label_forest(children, self.root_nid, 1)
            root_end = meta.next_label
            meta.next_label += 1
            root_record = dataclasses.replace(old_root, end=root_end)
            records = child_records
        n_total = self.nodes_committed + len(records)

        # Physical undo image of the root's page: the in-place ``end``
        # rewrite is the one mutation of already-committed bytes, so
        # rollback (in-process or reopen-time) restores these bytes.
        pre_image: bytes | None = None
        if not first_batch:
            pre_image = store.pool.get_page(self.root_page_id).seal()

        if store.directory is not None:
            write_journal(
                store.directory,
                {
                    "op": "ingest",
                    "name": self.name,
                    "batch": self.batches_committed + 1,
                    "base_pages": base_pages,
                    "base_next_nid": base_next_nid,
                    "new_next_nid": meta.next_nid,
                    "root_page_id": self.root_page_id,
                    "root_page_hex": pre_image.hex() if pre_image is not None else None,
                },
            )
            maybe_crash(store.fault_plan, "ingest.journal_written")
            try:
                info = self._apply_batch(records, root_record, first_batch, n_total)
                store.pool.flush_all()
                store.disk.sync()
                maybe_crash(store.fault_plan, "ingest.pages_synced")
                meta.save(os.path.join(store.directory, META_FILE))  # COMMIT
                maybe_crash(store.fault_plan, "ingest.meta_committed")
            except Exception:
                # Real failure (a simulated crash, being a BaseException,
                # skips this and leaves the torn state for reopen-time
                # recovery): roll the batch back in-process.
                self._abort_batch(
                    base_pages, base_next_nid, base_next_label,
                    first_batch, old_info, old_root, pre_image,
                )
                raise
            clear_journal(store.directory)
            maybe_crash(store.fault_plan, "ingest.journal_cleared")
        else:
            try:
                info = self._apply_batch(records, root_record, first_batch, n_total)
                store.pool.flush_all()
            except Exception:
                self._abort_batch(
                    base_pages, base_next_nid, base_next_label,
                    first_batch, old_info, old_root, pre_image,
                )
                raise

        self.batches_committed += 1
        self.nodes_committed = n_total
        self._root_record = root_record
        self.last_batch_records = records
        self.last_root_record = root_record
        self.last_old_root = old_root
        self.last_first_batch = first_batch
        store.ingest_stats.batches_committed += 1
        store.ingest_stats.nodes_streamed += len(records)
        store.generation += 1
        return info

    def _apply_batch(
        self,
        records: list[NodeRecord],
        root_record: NodeRecord,
        first_batch: bool,
        n_total: int,
    ) -> DocumentInfo:
        store = self.store
        store._pack_records(records)
        if first_batch:
            info = store.meta.register_document(self.name, records[0].nid, n_total)
            self.root_nid = records[0].nid
            self.root_page_id, self.root_slot = store.meta.locate(self.root_nid)
            return info
        page = store.pool.get_page(self.root_page_id)
        page.overwrite_record(self.root_slot, encode_record(root_record))
        return store.meta.resize_document(self.name, n_total)

    def _abort_batch(
        self,
        base_pages: int,
        base_next_nid: int,
        base_next_label: int,
        first_batch: bool,
        old_info: DocumentInfo | None,
        old_root: NodeRecord | None,
        pre_image: bytes | None,
    ) -> None:
        store = self.store
        try:
            store.pool.discard_all()
            store.disk.truncate(base_pages)
        except StorageError:  # pragma: no cover - best-effort rollback
            pass
        if store.directory is not None:
            # The batch never committed, so the on-disk metadata is the
            # last committed batch's — reload it wholesale.
            meta_path = os.path.join(store.directory, META_FILE)
            if os.path.exists(meta_path):
                store.meta = MetadataManager.load(meta_path)
            else:
                store.meta = MetadataManager()
            store.meta.next_nid = min(store.meta.next_nid, base_next_nid)
            store.meta.next_label = min(store.meta.next_label, base_next_label)
        else:
            # In-memory stores have no metadata file: undo by hand.
            meta = store.meta
            keep = [
                index
                for index, page_id in enumerate(meta.page_ids)
                if page_id < base_pages
            ]
            meta.page_ids = [meta.page_ids[index] for index in keep]
            meta.page_first_nids = [meta.page_first_nids[index] for index in keep]
            meta.next_nid = base_next_nid
            meta.next_label = base_next_label
            doc_id = meta._documents_by_name.get(self.name)
            if first_batch:
                if doc_id is not None:
                    meta._documents_by_name.pop(self.name)
                    meta.documents.pop(doc_id)
            elif old_info is not None and doc_id is not None:
                meta.documents[doc_id] = old_info
        # Undo the in-place root rewrite in case the new image reached
        # disk before the failure (flush_all precedes the commit point).
        if pre_image is not None and self.root_page_id is not None:
            try:
                store.disk.write_page(Page(self.root_page_id, bytearray(pre_image)))
            except StorageError:  # pragma: no cover - best-effort rollback
                pass
        if store.directory is not None:
            clear_journal(store.directory)
        self._root_record = old_root
        if first_batch:
            self.root_nid = None
            self.root_page_id = None
            self.root_slot = None

    def finish(self) -> DocumentInfo:
        """Commit the stream's end and release the store for other
        mutations.  A stream with no committed batches commits one empty
        batch so the (childless) document exists."""
        if self._done:
            raise DatabaseError(f"ingest of {self.name!r} is already finished")
        if self.batches_committed == 0:
            self.commit_batch([])
        info = self.document
        self._done = True
        self.store._active_ingest = None
        self.store.ingest_stats.ingests_finished += 1
        return info

    def abort(self) -> None:
        """Stop the ingest, leaving every *committed* batch in place.

        The document (if any batch committed) remains valid and
        readable at the last batch boundary; nothing from the current
        uncommitted batch is visible.  Idempotent."""
        if self._done:
            return
        self._done = True
        self.store._active_ingest = None
        self.store.ingest_stats.ingests_aborted += 1
