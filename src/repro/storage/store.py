"""The node store — TIMBER's Data Manager on top of the page substrate.

Documents are bulk-loaded: a parsed :class:`~repro.xmlmodel.node.XMLNode`
tree is labelled with ``(start, end, level)`` containment labels in one
traversal, encoded into node records, and packed densely into slotted
pages in document order.  Because nids equal preorder positions, a
node's subtree is the contiguous nid range ``[nid, nid + size)`` and
children are enumerated by hopping over sibling subtrees — every hop is
one record lookup through the buffer pool, which is exactly the cost
model the paper's evaluation reasons about.

The store separates *structural* access (records, labels, children) from
*value* access (``content``): Sec. 5.3 argues grouping should run on
identifiers and only populate values late.  The statistics object counts
both kinds of access so benchmarks can report them.
"""

from __future__ import annotations

import os
from typing import Iterator

from ..errors import DatabaseError, StorageError
from ..xmlmodel.node import XMLNode
from ..xmlmodel.parse import parse_document
from .buffer import DEFAULT_POOL_FRAMES, BufferPool
from .disk import DiskManager
from .metadata import DocumentInfo, MetadataManager
from .page import Page
from .records import NO_PARENT, NodeRecord, decode_record, encode_record

DATA_FILE = "data.pages"
META_FILE = "meta.json"


class StoreStatistics:
    """Logical access counters for the cost model."""

    __slots__ = ("record_lookups", "value_lookups", "nodes_materialized")

    def __init__(self):
        self.record_lookups = 0
        self.value_lookups = 0
        self.nodes_materialized = 0

    def reset(self) -> None:
        self.record_lookups = 0
        self.value_lookups = 0
        self.nodes_materialized = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "record_lookups": self.record_lookups,
            "value_lookups": self.value_lookups,
            "nodes_materialized": self.nodes_materialized,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StoreStatistics records={self.record_lookups} "
            f"values={self.value_lookups} materialized={self.nodes_materialized}>"
        )


class NodeStore:
    """Page-backed store of labelled XML nodes."""

    def __init__(self, directory: str | None = None, pool_frames: int = DEFAULT_POOL_FRAMES):
        """Create (or open) a store.

        ``directory=None`` gives an in-memory store: same code paths and
        counters, no files.  With a directory, ``data.pages`` and
        ``meta.json`` are created there, and an existing store at that
        location is reopened.
        """
        self.directory = directory
        if directory is None:
            self.disk = DiskManager(None)
            self.meta = MetadataManager()
        else:
            os.makedirs(directory, exist_ok=True)
            data_path = os.path.join(directory, DATA_FILE)
            meta_path = os.path.join(directory, META_FILE)
            self.disk = DiskManager(data_path)
            if os.path.exists(meta_path):
                self.meta = MetadataManager.load(meta_path)
            else:
                self.meta = MetadataManager()
        self.pool = BufferPool(self.disk, capacity=pool_frames)
        self.counters = StoreStatistics()

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load_tree(self, root: XMLNode, name: str) -> DocumentInfo:
        """Label, encode, and store a document tree under ``name``."""
        records = self._label_tree(root)
        self._pack_records(records)
        info = self.meta.register_document(name, records[0].nid, len(records))
        self.flush()
        return info

    def load_text(self, text: str, name: str) -> DocumentInfo:
        """Parse XML text and store it."""
        return self.load_tree(parse_document(text), name)

    def load_file(self, path: str, name: str | None = None) -> DocumentInfo:
        with open(path, encoding="utf-8") as handle:
            return self.load_text(handle.read(), name or os.path.basename(path))

    def _label_tree(self, root: XMLNode) -> list[NodeRecord]:
        """Assign nids and (start, end, level) labels in one traversal."""
        first_nid = self.meta.next_nid
        counter = self.meta.next_label
        next_nid = first_nid
        records: list[NodeRecord | None] = []
        starts: dict[int, tuple[int, int, int]] = {}  # id(node) -> (nid, start, level)

        stack: list[tuple[XMLNode, int, int, bool]] = [(root, NO_PARENT, 0, False)]
        while stack:
            node, parent_nid, level, expanded = stack.pop()
            if not expanded:
                nid = next_nid
                next_nid += 1
                starts[id(node)] = (nid, counter, level)
                counter += 1
                records.append(None)
                stack.append((node, parent_nid, level, True))
                stack.extend((child, nid, level + 1, False) for child in reversed(node.children))
            else:
                nid, start, level_ = starts.pop(id(node))
                end = counter
                counter += 1
                records[nid - first_nid] = NodeRecord(
                    nid=nid,
                    parent=parent_nid,
                    tag_sym=self.meta.symbols.intern(node.tag),
                    start=start,
                    end=end,
                    level=level_,
                    content=node.content,
                    attributes=tuple(node.attributes.items()),
                )
                node.nid = nid

        # Hand out parent nids to the expanded pass: children were pushed
        # with the parent's nid already assigned, so every record is set.
        complete = [record for record in records if record is not None]
        if len(complete) != len(records):
            raise StorageError("internal error: labelling produced holes")
        self.meta.next_nid = next_nid
        self.meta.next_label = counter
        return complete

    def _pack_records(self, records: list[NodeRecord]) -> None:
        """Append encoded records densely onto fresh pages, in nid order."""
        page: Page | None = None
        for record in records:
            payload = encode_record(record)
            if page is None or len(payload) > page.free_space():
                if page is not None:
                    self.pool.put_new_page(page)
                page_id = self.disk.allocate_page()
                page = Page(page_id)
                if len(payload) > page.free_space():
                    raise StorageError(
                        f"node {record.nid}: record of {len(payload)} bytes "
                        "exceeds the page capacity"
                    )
                self.meta.register_page(page_id, record.nid)
            page.insert_record(payload)
        if page is not None:
            self.pool.put_new_page(page)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, nid: int) -> NodeRecord:
        """Fetch and decode the record for ``nid`` (one logical lookup)."""
        page_id, slot = self.meta.locate(nid)
        page = self.pool.get_page(page_id)
        self.counters.record_lookups += 1
        return decode_record(page.read_record(slot))

    def tag(self, nid: int) -> str:
        return self.meta.symbols.name(self.record(nid).tag_sym)

    def content(self, nid: int) -> str | None:
        """A *data value lookup* (Sec. 5.3): fetch the node's text value."""
        record = self.record(nid)
        self.counters.value_lookups += 1
        return record.content

    def label(self, nid: int) -> tuple[int, int, int]:
        """The ``(start, end, level)`` containment label."""
        record = self.record(nid)
        return (record.start, record.end, record.level)

    def parent(self, nid: int) -> int | None:
        parent = self.record(nid).parent
        return None if parent == NO_PARENT else parent

    def subtree_node_count(self, nid: int) -> int:
        return self.record(nid).subtree_node_count

    def subtree_nids(self, nid: int) -> range:
        """The contiguous nid range of the subtree rooted at ``nid``."""
        return range(nid, nid + self.record(nid).subtree_node_count)

    def children(self, nid: int) -> list[int]:
        """Child nids in document order (one lookup per child)."""
        record = self.record(nid)
        out: list[int] = []
        child = nid + 1
        last = nid + record.subtree_node_count - 1
        while child <= last:
            out.append(child)
            child += self.record(child).subtree_node_count
        return out

    def is_ancestor(self, ancestor_nid: int, descendant_nid: int) -> bool:
        """Containment test straight off the labels."""
        a = self.record(ancestor_nid)
        d = self.record(descendant_nid)
        return a.start < d.start and d.end < a.end

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, doc_id: int | None = None) -> Iterator[NodeRecord]:
        """Full scan of the store (or of one document) in document order.

        This is the fallback the paper contrasts against index-assisted
        matching (Sec. 5.2) and is used by the scan-based matcher
        ablation.
        """
        if doc_id is None:
            # Only live documents: dropped ranges are garbage.
            for info in self.documents():
                for nid in range(info.first_nid, info.last_nid + 1):
                    yield self.record(nid)
            return
        info = self.meta.document(doc_id)
        for nid in range(info.first_nid, info.last_nid + 1):
            yield self.record(nid)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, nid: int, with_content: bool = True) -> XMLNode:
        """Rebuild the subtree at ``nid`` as an in-memory tree.

        With ``with_content=False`` the structural shell is produced:
        tags and nids only, contents left unpopulated — the late
        materialization mode of Sec. 5.3.  Value lookups are counted per
        populated node.
        """
        root_record = self.record(nid)
        nodes: dict[int, XMLNode] = {}
        root_node: XMLNode | None = None
        for current in range(nid, nid + root_record.subtree_node_count):
            record = root_record if current == nid else self.record(current)
            node = XMLNode(
                self.meta.symbols.name(record.tag_sym),
                content=record.content if with_content else None,
                attributes=dict(record.attributes) or None,
                nid=record.nid,
            )
            if with_content and record.content is not None:
                self.counters.value_lookups += 1
            self.counters.nodes_materialized += 1
            nodes[current] = node
            if current == nid:
                root_node = node
            else:
                parent = nodes.get(record.parent)
                if parent is None:
                    raise StorageError(
                        f"nid {current}: parent {record.parent} outside the subtree"
                    )
                parent.append_child(node)
        assert root_node is not None
        return root_node

    def populate_content(self, node: XMLNode) -> XMLNode:
        """Fill in the contents of a shell tree in place (late population)."""
        for member in node.iter():
            if member.nid is not None and member.content is None:
                member.content = self.content(member.nid)
        return node

    # ------------------------------------------------------------------
    # Documents and lifecycle
    # ------------------------------------------------------------------
    def document(self, name: str) -> DocumentInfo:
        return self.meta.document_by_name(name)

    def drop_document(self, name: str) -> DocumentInfo:
        """Remove a document from the catalog (space is not reclaimed
        until :meth:`compact`)."""
        info = self.meta.remove_document(name)
        self.flush()
        return info

    def compact(self) -> "NodeStore":
        """Rebuild the store without garbage, reclaiming dropped space.

        Live documents are materialized, a fresh page file is bulk-loaded
        with fresh nids/labels, and — for directory-backed stores — the
        files are swapped in place.  Returns the compacted store (a new
        object; the old handle is closed).
        """
        live = [
            (info.name, self.materialize(info.root_nid, with_content=True))
            for info in self.documents()
        ]
        if self.directory is None:
            fresh = NodeStore(None, pool_frames=self.pool.capacity)
            for name, root in live:
                fresh.load_tree(root, name)
            self.close()
            return fresh
        directory = self.directory
        self.close()
        for filename in (DATA_FILE, META_FILE):
            path = os.path.join(directory, filename)
            if os.path.exists(path):
                os.remove(path)
        fresh = NodeStore(directory, pool_frames=self.pool.capacity)
        for name, root in live:
            fresh.load_tree(root, name)
        fresh.flush()
        return fresh

    def documents(self) -> list[DocumentInfo]:
        return [self.meta.documents[doc_id] for doc_id in sorted(self.meta.documents)]

    def n_nodes(self) -> int:
        return self.meta.next_nid

    def stats(self):
        """One immutable merged snapshot of all counters (store, pool,
        disk).

        Snapshots never change after capture: compare two to get the
        work done in between.  Counters are zeroed only by an explicit
        :meth:`reset_stats` — never implicitly.
        """
        from ..observability.counters import CounterSnapshot

        merged: dict[str, int] = {}
        merged.update(self.counters.snapshot())
        merged.update(self.pool.counters.snapshot())
        merged.update(self.disk.counters.snapshot())
        return CounterSnapshot(merged)

    def reset_stats(self) -> None:
        """Explicitly zero every counter (store, pool, disk)."""
        self.counters.reset()
        self.pool.reset_stats()
        self.disk.reset_stats()

    def reset_statistics(self) -> None:
        """Zero every counter before a measured run (alias kept for the
        benchmark harness and existing callers)."""
        self.reset_stats()

    def statistics(self) -> dict[str, int]:
        """All counters as a plain dict (mutable copy of :meth:`stats`)."""
        return self.stats().as_dict()

    def flush(self) -> None:
        """Write dirty pages and persist metadata."""
        self.pool.flush_all()
        if self.directory is not None:
            self.meta.save(os.path.join(self.directory, META_FILE))

    def close(self) -> None:
        self.flush()
        self.disk.close()

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
