"""Storage substrate (S2): pages, disk manager, buffer pool, node store.

This package replaces Shore in the TIMBER architecture (Fig. 12 of the
paper) with a from-scratch Python implementation that preserves the cost
model: 8 KB slotted pages, an LRU buffer pool with pin counts (default
32 MB as in Sec. 6), and physical/logical access counters.
"""

from .buffer import DEFAULT_POOL_FRAMES, BufferPool, BufferStatistics
from .disk import DiskManager, IOStatistics
from .faults import (
    NO_FAULTS,
    FaultPlan,
    FaultStatistics,
    FaultyDiskManager,
    SimulatedCrash,
)
from .journal import (
    COMPACT_CRASH_POINTS,
    JOURNAL_FILE,
    LOAD_CRASH_POINTS,
    recover_directory,
)
from .metadata import DocumentInfo, MetadataManager, SymbolTable
from .page import PAGE_SIZE, Page
from .records import NO_PARENT, NodeRecord, decode_record, encode_record
from .store import (
    NodeStore,
    RecoveryStatistics,
    RepairReport,
    StoreStatistics,
    VerifyReport,
)

__all__ = [
    "DEFAULT_POOL_FRAMES",
    "BufferPool",
    "BufferStatistics",
    "DiskManager",
    "IOStatistics",
    "NO_FAULTS",
    "FaultPlan",
    "FaultStatistics",
    "FaultyDiskManager",
    "SimulatedCrash",
    "COMPACT_CRASH_POINTS",
    "JOURNAL_FILE",
    "LOAD_CRASH_POINTS",
    "recover_directory",
    "DocumentInfo",
    "MetadataManager",
    "SymbolTable",
    "PAGE_SIZE",
    "Page",
    "NO_PARENT",
    "NodeRecord",
    "decode_record",
    "encode_record",
    "NodeStore",
    "RecoveryStatistics",
    "RepairReport",
    "StoreStatistics",
    "VerifyReport",
]
