"""Node records: the on-page representation of one XML element node.

TIMBER stores each element node as a record carrying its structural
label and content; pattern matching then works off labels alone (Sec.
5.2-5.3).  Our record carries:

* ``nid`` — node id, equal to the node's preorder position in the whole
  store.  Because nids are assigned in document order, the subtree of a
  node occupies the contiguous nid range ``[nid, nid + size)``.
* ``parent`` — parent nid (``NO_PARENT`` for document roots).
* ``tag_sym`` — tag symbol (interned through the metadata manager).
* ``start, end, level`` — the containment label of Al-Khalifa et al.
  [1]: ``start`` is stamped on entry, ``end`` on exit of a single
  counter, so *a* is an ancestor of *d* iff
  ``a.start < d.start and d.end < a.end``, and parent-child adds
  ``a.level + 1 == d.level``.
* ``content`` — the node's text content, or ``None``.
* ``attributes`` — attribute name/value pairs.

Binary layout (big-endian): a fixed 24-byte header followed by the
variable sections::

    u32 nid | u32 parent | u32 tag_sym | u32 start | u32 end |
    u16 level | u8 flags | u8 n_attrs |
    [u32 content_len | content utf-8]        (if flags & HAS_CONTENT)
    n_attrs x [u16 len | name] [u16 len | value]
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import StorageError

NO_PARENT = 0xFFFFFFFF

_HEADER = struct.Struct(">IIIIIHBB")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")

_FLAG_HAS_CONTENT = 0x01


@dataclass(frozen=True)
class NodeRecord:
    """Decoded form of one stored node."""

    nid: int
    parent: int  # NO_PARENT for roots
    tag_sym: int
    start: int
    end: int
    level: int
    content: str | None = None
    attributes: tuple[tuple[str, str], ...] = field(default=())

    @property
    def subtree_node_count(self) -> int:
        """Number of nodes in the subtree rooted here (self included)."""
        return (self.end - self.start + 1) // 2

    @property
    def is_leaf(self) -> bool:
        return self.subtree_node_count == 1

    def contains(self, other: "NodeRecord") -> bool:
        """Ancestor test via region containment."""
        return self.start < other.start and other.end < self.end

    def is_parent_of(self, other: "NodeRecord") -> bool:
        return self.contains(other) and self.level + 1 == other.level


def encode_record(record: NodeRecord) -> bytes:
    """Serialize ``record`` to its on-page byte form."""
    if len(record.attributes) > 255:
        raise StorageError(f"node {record.nid}: too many attributes")
    flags = _FLAG_HAS_CONTENT if record.content is not None else 0
    parts = [
        _HEADER.pack(
            record.nid,
            record.parent,
            record.tag_sym,
            record.start,
            record.end,
            record.level,
            flags,
            len(record.attributes),
        )
    ]
    if record.content is not None:
        payload = record.content.encode("utf-8")
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    for name, value in record.attributes:
        for text in (name, value):
            payload = text.encode("utf-8")
            if len(payload) > 0xFFFF:
                raise StorageError(f"node {record.nid}: attribute text too long")
            parts.append(_U16.pack(len(payload)))
            parts.append(payload)
    return b"".join(parts)


def decode_record(raw: bytes) -> NodeRecord:
    """Inverse of :func:`encode_record`."""
    if len(raw) < _HEADER.size:
        raise StorageError("truncated node record")
    nid, parent, tag_sym, start, end, level, flags, n_attrs = _HEADER.unpack_from(raw, 0)
    pos = _HEADER.size
    content: str | None = None
    if flags & _FLAG_HAS_CONTENT:
        (length,) = _U32.unpack_from(raw, pos)
        pos += _U32.size
        content = raw[pos : pos + length].decode("utf-8")
        pos += length
    attributes: list[tuple[str, str]] = []
    for _ in range(n_attrs):
        pair: list[str] = []
        for _ in range(2):
            (length,) = _U16.unpack_from(raw, pos)
            pos += _U16.size
            pair.append(raw[pos : pos + length].decode("utf-8"))
            pos += length
        attributes.append((pair[0], pair[1]))
    return NodeRecord(
        nid=nid,
        parent=parent,
        tag_sym=tag_sym,
        start=start,
        end=end,
        level=level,
        content=content,
        attributes=tuple(attributes),
    )
