"""``timber-py`` — command-line front end to the reproduction.

Subcommands::

    timber-py generate --articles 800 --authors 160 out.xml
    timber-py load big.xml dbdir --batch-size 4096 --progress
    timber-py query db.xml --plan groupby --query-file q.xq --timeout 5
    timber-py explain db.xml --query-file q.xq
    timber-py serve db.xml --port 8491 --workers 8 --drain-seconds 5
    timber-py experiment e1|e2|e3|a1|a2|a3 [--articles N --authors M]

Exit codes: 0 success, 1 failure (e.g. verify found damage), 2 query
deadline exceeded (``--timeout``), 3 a ``serve`` drain that had to
force-close in-flight work when its grace budget expired.

``serve`` runs in the foreground until SIGINT/SIGTERM, then drains
gracefully: it stops accepting, lets in-flight requests finish within
``--drain-seconds``, and closes lingering connections with ``BYE``.
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    format_report,
    format_scaling,
    run_ablation_buffer_pool,
    run_ablation_grouping_strategies,
    run_ablation_match_strategies,
    run_experiment1,
    run_experiment2,
    run_scaling,
)
from .datagen.dblp import DBLPConfig, generate_dblp
from .datagen.sample import QUERY_1
from .errors import QueryTimeoutError
from .query.database import PLAN_MODES, Database
from .xmlmodel.serialize import write_file


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--articles", type=int, default=800, help="number of articles")
    parser.add_argument("--authors", type=int, default=160, help="author pool size")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")


def _config_from(args: argparse.Namespace) -> DBLPConfig:
    return DBLPConfig(n_articles=args.articles, n_authors=args.authors, seed=args.seed)


def _read_query(args: argparse.Namespace) -> str:
    if args.query_file:
        with open(args.query_file, encoding="utf-8") as handle:
            return handle.read()
    return QUERY_1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="timber-py",
        description="Reproduction of 'Grouping in XML' (EDBT 2002) — TIMBER/TAX grouping.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="write a synthetic DBLP document")
    _add_config_args(gen)
    gen.add_argument("output", help="output XML path")

    load = commands.add_parser(
        "load",
        help="stream an XML file into a database directory in journaled batches",
    )
    load.add_argument("input", help="XML file to ingest")
    load.add_argument("directory", help="database directory to create or extend")
    load.add_argument(
        "--name", help="document name in the catalog (default: input basename)"
    )
    load.add_argument(
        "--batch-size",
        type=int,
        metavar="NODES",
        help="approximate nodes per ingest batch (default 4096)",
    )
    load.add_argument(
        "--progress",
        action="store_true",
        help="print one line per committed batch",
    )

    query = commands.add_parser("query", help="run a query against an XML file")
    query.add_argument("database", help="XML file to load as bib.xml")
    query.add_argument("--plan", choices=PLAN_MODES, default="auto")
    query.add_argument("--query-file", help="file with the XQuery text (default: Query 1)")
    query.add_argument(
        "--analyze",
        action="store_true",
        help="print the executed plan with per-operator times and counters",
    )
    query.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="cancel the query after this many seconds (exit code 2)",
    )
    query.add_argument(
        "--no-optimizer",
        action="store_true",
        help="disable the cost-based optimizer (heuristic AUTO plan choice)",
    )

    explain = commands.add_parser("explain", help="show naive + rewritten plans")
    explain.add_argument("database", help="XML file to load as bib.xml")
    explain.add_argument("--query-file", help="file with the XQuery text (default: Query 1)")
    explain.add_argument(
        "--verbose", action="store_true", help="annotate plans with optimizer estimates"
    )
    explain.add_argument(
        "--no-optimizer",
        action="store_true",
        help="disable the cost-based optimizer (heuristic AUTO plan choice)",
    )

    info = commands.add_parser("info", help="database summary: documents, pages, tags")
    info.add_argument("database", help="XML file to load as bib.xml")

    verify = commands.add_parser(
        "verify", help="check a database directory: checksums, catalog, indexes"
    )
    verify.add_argument("directory", help="database directory (data.pages + meta.json)")

    repair = commands.add_parser(
        "repair",
        help="quarantine unreadable pages, drop the documents on them, rebuild indexes",
    )
    repair.add_argument("directory", help="database directory (data.pages + meta.json)")

    serve = commands.add_parser(
        "serve", help="run the concurrent query service over TCP"
    )
    serve.add_argument("database", help="XML file to load as bib.xml")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8491, help="0 picks a free port")
    serve.add_argument("--workers", type=int, default=4, help="query worker threads")
    serve.add_argument(
        "--queue-depth", type=int, default=32, help="admission queue bound"
    )
    serve.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="default per-query deadline (clients may override per query)",
    )
    serve.add_argument(
        "--plan-cache", type=int, default=128, help="plan cache entries (0 disables)"
    )
    serve.add_argument(
        "--result-cache",
        type=int,
        default=256,
        help="result cache entries (0 disables)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="disconnect a client that sends no complete request for this long",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="connection cap; above it new connections are shed with ERR",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="grace budget for in-flight requests on SIGINT/SIGTERM "
        "(exit 3 if work had to be force-closed)",
    )

    cluster = commands.add_parser(
        "cluster",
        help="demo the fault-tolerant sharded cluster (scatter-gather GROUPBY)",
    )
    _add_config_args(cluster)
    cluster.add_argument(
        "--shards", type=int, default=2, help="number of in-process shards"
    )
    cluster.add_argument(
        "--replication",
        type=int,
        default=1,
        help="copies of each slice (2+ enables hedged retries)",
    )
    cluster.add_argument(
        "--degrade",
        action="store_true",
        help="kill one shard mid-demo to show typed partial degradation",
    )
    cluster.add_argument(
        "--query-file", help="file with the XQuery text (default: Query 1)"
    )

    experiment = commands.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "which", choices=("e1", "e2", "e3", "a1", "a2", "a3"), help="experiment id"
    )
    _add_config_args(experiment)

    args = parser.parse_args(argv)

    if args.command == "verify":
        from .storage.store import NodeStore

        with NodeStore(args.directory) as store:
            report = store.verify()
            if store.directory is not None:
                from .indexing.persist import snapshot_is_fresh

                report.index_fresh = snapshot_is_fresh(store.meta, store.directory)
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "repair":
        # Degraded open quarantines what verify would flag; the Database
        # layer then rebuilds + persists indexes over the survivors.
        db = Database(args.directory, degraded=True)
        try:
            report = db.store.verify()
            print(report.render())
            recovery = db.store.recovery
            print(
                f"quarantined {recovery.pages_quarantined} page(s), "
                f"dropped {recovery.documents_dropped} document(s); indexes rebuilt"
            )
        finally:
            db.close()
        return 0

    if args.command == "generate":
        tree = generate_dblp(_config_from(args))
        write_file(tree, args.output)
        print(f"wrote {tree.subtree_size()} nodes to {args.output}")
        return 0

    if args.command == "load":

        def _on_batch(event):
            print(
                f"batch {event.batch}: +{event.nodes_in_batch} nodes "
                f"({event.nodes_total} total, generation {event.generation})",
                file=sys.stderr,
            )

        db = Database(args.directory)
        try:
            report = db.load(
                path=args.input,
                name=args.name,
                batch_size=args.batch_size,
                on_batch=_on_batch if args.progress else None,
            )
            print(
                f"loaded {report.document}: {report.nodes} nodes in "
                f"{report.batches} batch(es), generation {report.generation}"
            )
        finally:
            db.close()
        return 0

    if args.command == "info":
        db = Database()
        db.load(path=args.database, name="bib.xml")
        summary = db.info()
        for document in summary["documents"]:
            print(f"document {document['name']}: {document['nodes']} nodes")
        print(f"total nodes: {summary['total_nodes']}")
        print(f"pages: {summary['pages']} (pool: {summary['buffer_frames']} frames)")
        print(f"value-index keys: {summary['value_index_keys']}")
        print("tags: " + ", ".join(f"{t}={n}" for t, n in sorted(summary["tags"].items())))
        return 0

    if args.command in ("query", "explain"):
        db = Database(
            optimizer=False if getattr(args, "no_optimizer", False) else None
        )
        db.load(path=args.database, name="bib.xml")
        text = _read_query(args)
        if args.command == "explain":
            print(db.explain(text, verbose=getattr(args, "verbose", False)).render())
            return 0
        try:
            result = db.query(
                text, plan=args.plan, analyze=args.analyze, timeout=args.timeout
            )
        except QueryTimeoutError as error:
            print(f"timber-py: query timed out: {error}", file=sys.stderr)
            return 2
        print(result.collection.sketch())
        if result.profile is not None:
            print(f"\n{result.profile.render()}", file=sys.stderr)
        print(
            f"\n[{result.plan_mode}] {len(result.collection)} results in "
            f"{result.elapsed_seconds:.4f}s; statistics: {result.statistics}",
            file=sys.stderr,
        )
        return 0

    if args.command == "serve":
        import signal
        import threading

        from .service import QueryService, ServiceConfig
        from .service.server import ServerConfig, serve as bind_server

        db = Database()
        db.load(path=args.database, name="bib.xml")
        service = QueryService(
            db,
            ServiceConfig(
                workers=args.workers,
                queue_depth=args.queue_depth,
                default_timeout=args.timeout,
                plan_cache_entries=args.plan_cache,
                result_cache_entries=args.result_cache,
            ),
        )
        server = bind_server(
            service,
            host=args.host,
            port=args.port,
            config=ServerConfig(
                idle_timeout=args.idle_timeout,
                max_connections=args.max_connections,
                drain_grace=args.drain_seconds,
            ),
        )
        host, port = server.endpoint
        print(
            f"timber-py service on {host}:{port} "
            f"({args.workers} workers, queue depth {args.queue_depth}, "
            f"max {args.max_connections} connections)",
            file=sys.stderr,
        )
        # Foreground mode: SIGINT/SIGTERM request a graceful drain
        # rather than killing mid-request.  The serve loop runs on a
        # helper thread so the main thread can wait for the signal and
        # then drive the drain.
        stop = threading.Event()

        def _request_drain(signum, frame):  # pragma: no cover - signal path
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, _request_drain)
            except ValueError:
                pass  # not the main thread (embedded use); rely on stop.set()
        server.serve_background()
        try:
            stop.wait()
            print("timber-py service: draining...", file=sys.stderr)
            report = server.drain(args.drain_seconds)
            print(f"timber-py service: {report.render()}", file=sys.stderr)
        finally:
            server.server_close()
            service.close()
            db.close()
        return 0 if report.clean else 3

    if args.command == "cluster":
        return _run_cluster_demo(args)

    from .bench import report_chart

    config = _config_from(args)
    if args.which == "e1":
        report = run_experiment1(config)
        print(format_report(report, "E1"))
        print()
        print(report_chart(report))
    elif args.which == "e2":
        report = run_experiment2(config)
        print(format_report(report, "E2"))
        print()
        print(report_chart(report))
    elif args.which == "e3":
        print(format_scaling(run_scaling(base=config)))
    elif args.which == "a1":
        print(format_report(run_ablation_match_strategies(config)))
    elif args.which == "a2":
        print(format_report(run_ablation_grouping_strategies(config)))
    else:
        print(format_report(run_ablation_buffer_pool(config)))
    from .bench.trajectory import write_trajectory

    written = write_trajectory()
    if written is not None:
        print(f"trajectory written to {written}", file=sys.stderr)
    return 0


def _run_cluster_demo(args: argparse.Namespace) -> int:
    """``timber-py cluster``: bring up N in-process shards, partition a
    generated DBLP document across them, and show that the distributed
    GROUPBY answer is structurally identical to the single-node one —
    with an optional mid-demo shard kill to show typed degradation."""
    from .cluster import ClusterConfig, LocalCluster, LocalClusterConfig
    from .errors import PartialResultError
    from .xmlmodel.diff import diff_collections

    text = _read_query(args)
    tree = generate_dblp(_config_from(args))
    single = Database()
    single.load(tree=tree.deep_copy(), name="bib.xml")
    want = single.query(text).collection

    config = LocalClusterConfig(
        shards=args.shards,
        cluster=ClusterConfig(replication=args.replication),
        proxy_all=args.degrade,
    )
    with LocalCluster(config) as cluster:
        report = cluster.load(tree=tree, name="bib.xml")
        print(
            f"loaded {report.document}: {report.nodes} nodes in "
            f"{len(report.slices)} slice(s) across {args.shards} shard(s)"
        )
        result = cluster.query(text)
        verdict = diff_collections(want, result.collection)
        print(
            f"query: {len(result)} rows via {result.plan_kind} merge in "
            f"{result.elapsed_seconds:.4f}s; identical to single-node: "
            f"{'yes' if verdict is None else 'NO — ' + verdict}"
        )
        print()
        print(cluster.explain(text).render())
        health = cluster.health()
        print(f"health: {health.status}")
        if args.degrade:
            victim = cluster.shards[args.shards - 1]
            victim.proxy.close()
            print(f"\nkilled shard {victim.index}; retrying...")
            try:
                cluster.query(text)
            except PartialResultError as error:
                print(f"strict query -> {type(error).__name__}: {error}")
            partial = cluster.query(text, allow_partial=True)
            print(
                f"allow_partial=True -> {len(partial)} rows, missing "
                f"shards {sorted(partial.missing_shards)}"
            )
            print(f"health: {cluster.health().status}")
        snapshot = cluster.coordinator.counter_snapshot()
        active = {key: value for key, value in snapshot.items() if value}
        print(f"\ncluster counters: {active}")
        return 0 if verdict is None else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
