"""Workload generation (S15) and the paper's sample databases (S16)."""

from .dblp import (
    DEFAULT_AUTHOR_COUNT_WEIGHTS,
    DBLPConfig,
    DBLPProfile,
    generate_dblp,
    generate_dblp_with_profile,
)
from .sample import (
    QUERY_1,
    QUERY_2,
    QUERY_COUNT,
    figure6_database,
    transaction_database,
)

__all__ = [
    "DEFAULT_AUTHOR_COUNT_WEIGHTS",
    "DBLPConfig",
    "DBLPProfile",
    "generate_dblp",
    "generate_dblp_with_profile",
    "QUERY_1",
    "QUERY_2",
    "QUERY_COUNT",
    "figure6_database",
    "transaction_database",
]
