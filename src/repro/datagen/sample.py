"""Fixed sample databases from the paper's figures.

:func:`figure6_database` is the worked-example database of Fig. 6: three
articles by Jack, John, and Jill, used throughout Sec. 4.1's walk-through
(Figs. 7-10).  :func:`transaction_database` is a small bibliography with
"Transaction"-titled articles matching the pattern-tree example of
Figs. 1-3.
"""

from __future__ import annotations

from ..xmlmodel.node import XMLNode, element


def figure6_database() -> XMLNode:
    """The Fig. 6 sample: doc_root with the three worked-example articles.

    Article order, author order, and values reproduce the figure (the
    extra book-ish entries of the figure that never appear in Figs. 7-10
    are represented by the publisher/year sub-elements kept on the first
    article, exercising "irrelevant structure is immaterial").
    """
    return element(
        "doc_root",
        None,
        element(
            "article",
            None,
            element("author", "Jack"),
            element("author", "John"),
            element("title", "Querying XML"),
            element("year", "1999"),
            element("publisher", "Morgan Kaufman"),
        ),
        element(
            "article",
            None,
            element("title", "XML and the Web"),
            element("author", "Jill"),
            element("author", "Jack"),
        ),
        element(
            "article",
            None,
            element("author", "John"),
            element("title", "Hack HTML"),
        ),
    )


QUERY_1 = """
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title
}
</authorpubs>
"""

QUERY_2 = """
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
{$a} {$t}
</authorpubs>
"""

QUERY_COUNT = """
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
{$a} {count($t)}
</authorpubs>
"""


def transaction_database() -> XMLNode:
    """Articles echoing Fig. 2's witness trees: 'Transaction'-titled
    articles by Silberschatz, Garcia-Molina, and Thompson."""
    return element(
        "doc_root",
        None,
        element(
            "article",
            None,
            element("title", "Transaction Mng ..."),
            element("author", "Silberschatz"),
        ),
        element(
            "article",
            None,
            element("title", "Overview of Transaction Mng"),
            element("author", "Silberschatz"),
            element("author", "Garcia-Molina"),
        ),
        element(
            "article",
            None,
            element("title", "Transaction Mng ..."),
            element("author", "Thompson"),
        ),
        element(
            "article",
            None,
            element("title", "Query Processing"),
            element("author", "Garcia-Molina"),
        ),
    )
