"""Synthetic DBLP-journals workload generator.

The paper's evaluation uses the Journals portion of the DBLP data set
(4.6 M nodes, ~100 MB).  That dump is not shippable, so this generator
produces a structurally faithful substitute at configurable scale:

* ``article`` elements under a single ``doc_root``;
* a **shared author pool** with a Zipf-like popularity skew, so a few
  authors write many articles and the grouping fan-in matches DBLP's;
* per-article author multiplicity drawn from a distribution that
  includes zero (the paper's introduction: "Yet other articles may have
  no authors at all") and several;
* long-ish ``title`` content (the paper notes "the content of title
  nodes is often fairly long", which drives the E1-vs-E2 gap);
* ``journal``, ``year``, ``volume``, ``pages`` sub-elements;
* optional ``institution`` children inside authors for the
  group-by-institution query variant.

Generation is deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..xmlmodel.node import XMLNode

_FIRST_NAMES = [
    "Jack", "John", "Jill", "Mary", "Ann", "Hugo", "Ivan", "Nina", "Omar",
    "Pia", "Ravi", "Sara", "Tom", "Uma", "Vera", "Wei", "Xena", "Yan",
    "Zoe", "Alan", "Bela", "Carl", "Dana", "Egon", "Faye",
]
_LAST_NAMES = [
    "Smith", "Jones", "Chen", "Patel", "Kim", "Novak", "Silva", "Mori",
    "Weber", "Rossi", "Dubois", "Olsen", "Kovacs", "Takeda", "Ferrari",
    "Haas", "Lindt", "Berg", "Costa", "Iwata", "Nagy", "Popov", "Quist",
    "Reyes", "Sato",
]
_TITLE_WORDS = [
    "Transaction", "Management", "Querying", "XML", "Databases", "Indexing",
    "Structural", "Joins", "Grouping", "Aggregation", "Storage", "Semantics",
    "Optimization", "Algebra", "Trees", "Patterns", "Evaluation", "Systems",
    "Distributed", "Concurrency", "Recovery", "Views", "Schemas", "Streams",
    "Performance", "Scalable", "Efficient", "Adaptive", "Declarative",
]
_JOURNALS = [
    "TODS", "VLDB Journal", "SIGMOD Record", "Information Systems",
    "Data Engineering Bulletin", "TKDE",
]
_INSTITUTIONS = [
    "U Michigan", "UBC", "ATT Labs", "U Toronto", "Stanford", "MIT",
    "U Wisconsin", "CWI", "INRIA", "ETH",
]

# Default per-article author-count distribution: most articles have 1-3
# authors, some more, a few none (weights for counts 0..5).
DEFAULT_AUTHOR_COUNT_WEIGHTS = (4, 30, 35, 20, 8, 3)


@dataclass(frozen=True)
class DBLPConfig:
    """Knobs of the generator; defaults give a laptop-scale database."""

    n_articles: int = 1000
    n_authors: int = 400
    seed: int = 7
    author_count_weights: tuple[int, ...] = DEFAULT_AUTHOR_COUNT_WEIGHTS
    title_words: tuple[int, int] = (4, 9)  # min/max words per title
    with_institutions: bool = False
    year_range: tuple[int, int] = (1985, 2001)

    def scaled(self, factor: float) -> "DBLPConfig":
        """A config with articles and authors scaled by ``factor``."""
        return DBLPConfig(
            n_articles=max(1, int(self.n_articles * factor)),
            n_authors=max(1, int(self.n_authors * factor)),
            seed=self.seed,
            author_count_weights=self.author_count_weights,
            title_words=self.title_words,
            with_institutions=self.with_institutions,
            year_range=self.year_range,
        )


@dataclass
class DBLPProfile:
    """Shape statistics of a generated database (used by reports)."""

    n_articles: int = 0
    n_author_occurrences: int = 0
    n_distinct_authors: int = 0
    n_nodes: int = 0
    articles_without_authors: int = 0
    max_authors_per_article: int = 0
    author_article_counts: dict[str, int] = field(default_factory=dict)


def _author_pool(rng: random.Random, size: int) -> list[str]:
    """Distinct author names; numbered suffixes once combinations run out."""
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < size:
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        if name in seen:
            name = f"{name} {len(names)}"
        seen.add(name)
        names.append(name)
    return names


def _zipf_weights(n: int) -> list[float]:
    return [1.0 / (rank + 1) for rank in range(n)]


def generate_dblp(config: DBLPConfig = DBLPConfig()) -> XMLNode:
    """Build the document tree for ``config`` (root tag ``doc_root``)."""
    tree, _profile = generate_dblp_with_profile(config)
    return tree


def generate_dblp_with_profile(config: DBLPConfig = DBLPConfig()) -> tuple[XMLNode, DBLPProfile]:
    """Build the document and return its shape statistics alongside."""
    rng = random.Random(config.seed)
    authors = _author_pool(rng, config.n_authors)
    weights = _zipf_weights(config.n_authors)
    counts = list(range(len(config.author_count_weights)))
    institutions = {
        name: rng.choice(_INSTITUTIONS) for name in authors
    }

    profile = DBLPProfile()
    root = XMLNode("doc_root")
    for index in range(config.n_articles):
        article = root.add("article")
        n_words = rng.randint(*config.title_words)
        title = " ".join(rng.choice(_TITLE_WORDS) for _ in range(n_words))
        article.add("title", f"{title} ({index})")

        n_article_authors = rng.choices(counts, weights=config.author_count_weights)[0]
        picked: list[str] = []
        while len(picked) < n_article_authors:
            name = rng.choices(authors, weights=weights)[0]
            if name not in picked:  # no duplicate authors on one article
                picked.append(name)
        for name in picked:
            author = article.add("author", name)
            if config.with_institutions:
                author.add("institution", institutions[name])
            profile.author_article_counts[name] = (
                profile.author_article_counts.get(name, 0) + 1
            )
        profile.n_author_occurrences += len(picked)
        profile.max_authors_per_article = max(
            profile.max_authors_per_article, len(picked)
        )
        if not picked:
            profile.articles_without_authors += 1

        article.add("journal", rng.choice(_JOURNALS))
        article.add("year", str(rng.randint(*config.year_range)))
        volume = rng.randint(1, 40)
        article.add("volume", str(volume))
        first_page = rng.randint(1, 900)
        article.add("pages", f"{first_page}-{first_page + rng.randint(5, 40)}")

    profile.n_articles = config.n_articles
    profile.n_distinct_authors = len(profile.author_article_counts)
    profile.n_nodes = root.subtree_size()
    return root, profile
